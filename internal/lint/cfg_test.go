package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses a function body snippet and returns its CFG.
func parseFuncBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return BuildCFG(fn.Body)
}

// blockByKind returns the first block whose kind matches.
func blockByKind(t *testing.T, c *CFG, kind string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no block of kind %q in:\n%s", kind, c.dump())
	return nil
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	c := parseFuncBody(t, "x := 1\nx++\n_ = x")
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry should hold all 3 statements, got %d:\n%s", len(c.Entry.Nodes), c.dump())
	}
	if !hasEdge(c.Entry, c.Exit) {
		t.Fatalf("entry must fall through to exit:\n%s", c.dump())
	}
}

func TestCFGIfJoin(t *testing.T) {
	c := parseFuncBody(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	then := blockByKind(t, c, "if.then")
	done := blockByKind(t, c, "if.done")
	if !hasEdge(c.Entry, then) || !hasEdge(c.Entry, done) {
		t.Fatalf("cond block must branch to both then and done:\n%s", c.dump())
	}
	if !hasEdge(then, done) {
		t.Fatalf("then must rejoin at done:\n%s", c.dump())
	}
}

func TestCFGReturnEdgesToExit(t *testing.T) {
	c := parseFuncBody(t, "if true {\n\treturn\n}\n_ = 1")
	then := blockByKind(t, c, "if.then")
	if !hasEdge(then, c.Exit) {
		t.Fatalf("return inside then must edge to exit:\n%s", c.dump())
	}
	done := blockByKind(t, c, "if.done")
	if hasEdge(then, done) {
		t.Fatalf("a returning branch must not fall through to the join:\n%s", c.dump())
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	c := parseFuncBody(t, "if true {\n\tpanic(\"boom\")\n}\n_ = 1")
	then := blockByKind(t, c, "if.then")
	if !hasEdge(then, c.Exit) {
		t.Fatalf("panic must edge to exit:\n%s", c.dump())
	}
	if hasEdge(then, blockByKind(t, c, "if.done")) {
		t.Fatalf("panic must not fall through:\n%s", c.dump())
	}
}

func TestCFGForLoop(t *testing.T) {
	c := parseFuncBody(t, "for i := 0; i < 10; i++ {\n\t_ = i\n}")
	head := blockByKind(t, c, "for.head")
	body := blockByKind(t, c, "for.body")
	post := blockByKind(t, c, "for.post")
	done := blockByKind(t, c, "for.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Fatalf("head must branch to body and done:\n%s", c.dump())
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Fatalf("body must run post, post must loop back to head:\n%s", c.dump())
	}
}

func TestCFGInfiniteLoopUnreachableExit(t *testing.T) {
	c := parseFuncBody(t, "for {\n\t_ = 1\n}")
	if c.reachable()[c.Exit] {
		t.Fatalf("for{} without break must leave exit unreachable:\n%s", c.dump())
	}
}

func TestCFGBreakReachesExit(t *testing.T) {
	c := parseFuncBody(t, "for {\n\tbreak\n}")
	if !c.reachable()[c.Exit] {
		t.Fatalf("break must make exit reachable:\n%s", c.dump())
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// break outer must jump past BOTH loops, skipping the statement
	// after the inner loop.
	c := parseFuncBody(t, `
outer:
	for {
		for {
			break outer
		}
		_ = 1
	}
	_ = 2`)
	// The inner break's block must edge to the OUTER loop's done
	// block, not the inner one's.
	var outerDone, innerDone *Block
	for _, b := range c.Blocks {
		if b.Kind == "for.done" {
			if outerDone == nil {
				outerDone = b
			} else {
				innerDone = b
			}
		}
	}
	if outerDone == nil || innerDone == nil {
		t.Fatalf("expected two for.done blocks:\n%s", c.dump())
	}
	reach := c.reachable()
	if !reach[outerDone] {
		t.Fatalf("break outer must reach the outer done block:\n%s", c.dump())
	}
	if reach[innerDone] {
		t.Fatalf("the inner loop's done block must stay unreachable (only exit is break outer):\n%s", c.dump())
	}
	if !reach[c.Exit] {
		t.Fatalf("exit must be reachable via break outer:\n%s", c.dump())
	}
}

func TestCFGGotoEdges(t *testing.T) {
	// A forward goto jumps over the intervening statement.
	c := parseFuncBody(t, `
	x := 1
	if x > 0 {
		goto out
	}
	x = 2
out:
	_ = x`)
	label := blockByKind(t, c, "label.out")
	then := blockByKind(t, c, "if.then")
	if !hasEdge(then, label) {
		t.Fatalf("goto out must edge from the then block to the label block:\n%s", c.dump())
	}
	done := blockByKind(t, c, "if.done")
	if hasEdge(then, done) {
		t.Fatalf("the goto block must not fall through:\n%s", c.dump())
	}
}

func TestCFGBackwardGoto(t *testing.T) {
	c := parseFuncBody(t, `
again:
	if true {
		goto again
	}`)
	label := blockByKind(t, c, "label.again")
	then := blockByKind(t, c, "if.then")
	if !hasEdge(then, label) {
		t.Fatalf("backward goto must edge to the already-built label block:\n%s", c.dump())
	}
}

func TestCFGSelect(t *testing.T) {
	c := parseFuncBody(t, `
	var a, b chan int
	select {
	case <-a:
		_ = 1
	case b <- 1:
		_ = 2
	}`)
	if len(c.SelectComm) != 2 {
		t.Fatalf("both comm clauses must be registered, got %d:\n%s", len(c.SelectComm), c.dump())
	}
	done := blockByKind(t, c, "select.done")
	clauses := 0
	for _, b := range c.Blocks {
		if b.Kind == "select.case" {
			clauses++
			if !hasEdge(b, done) {
				t.Fatalf("clause must rejoin at select.done:\n%s", c.dump())
			}
			if len(b.Nodes) == 0 {
				t.Fatalf("clause block must start with its comm statement:\n%s", c.dump())
			}
		}
	}
	if clauses != 2 {
		t.Fatalf("expected 2 clause blocks, got %d:\n%s", clauses, c.dump())
	}
	for _, sc := range c.SelectComm {
		if sc.HasDefault {
			t.Fatal("select has no default clause")
		}
	}
}

func TestCFGSelectDefault(t *testing.T) {
	c := parseFuncBody(t, `
	var a chan int
	select {
	case <-a:
	default:
	}`)
	if len(c.SelectComm) != 1 {
		t.Fatalf("one comm clause expected, got %d", len(c.SelectComm))
	}
	for _, sc := range c.SelectComm {
		if !sc.HasDefault {
			t.Fatal("HasDefault must be set when a default clause exists")
		}
	}
}

func TestCFGRangeChannel(t *testing.T) {
	c := parseFuncBody(t, "var ch chan int\nfor v := range ch {\n\t_ = v\n}")
	if len(c.RangeX) != 1 {
		t.Fatalf("range X must be registered, got %d entries", len(c.RangeX))
	}
	head := blockByKind(t, c, "range.head")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head must hold the X expression:\n%s", c.dump())
	}
	body := blockByKind(t, c, "range.body")
	if !hasEdge(body, head) {
		t.Fatalf("range body must loop back to head:\n%s", c.dump())
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := parseFuncBody(t, `
	switch x := 1; x {
	case 1:
		_ = 1
		fallthrough
	case 2:
		_ = 2
	default:
		_ = 3
	}`)
	var cases []*Block
	for _, b := range c.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("expected 3 case blocks, got %d:\n%s", len(cases), c.dump())
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Fatalf("fallthrough must edge case 1 into case 2:\n%s", c.dump())
	}
	done := blockByKind(t, c, "switch.done")
	if hasEdge(cases[0], done) {
		t.Fatalf("a falling-through case must not also edge to done:\n%s", c.dump())
	}
}

func TestCFGDeferStaysInBlock(t *testing.T) {
	// defer is a simple node to the CFG; its at-exit semantics are the
	// checks' concern (locking treats defer mu.Unlock as a state
	// transition).
	c := parseFuncBody(t, "var x int\ndefer func() { x = 1 }()\n_ = x")
	found := false
	for _, n := range c.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer must appear as a node in its block:\n%s", c.dump())
	}
}

func TestCFGDumpDeterministic(t *testing.T) {
	body := "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x"
	a := parseFuncBody(t, body).dump()
	b := parseFuncBody(t, body).dump()
	if a != b {
		t.Fatalf("dump must be deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "entry") || !strings.Contains(a, "exit") {
		t.Fatalf("dump missing entry/exit:\n%s", a)
	}
}

func TestForwardMayAnalysis(t *testing.T) {
	// Gen/kill over string sets: x := assignments gen their LHS name,
	// and we ask which names MAY be assigned at exit.
	c := parseFuncBody(t, `
	a := 1
	if a > 0 {
		b := 2
		_ = b
	}
	_ = a`)
	an := forwardAnalysis[map[string]bool]{
		join: func(x, y map[string]bool) map[string]bool {
			out := make(map[string]bool, len(x)+len(y))
			for k := range x {
				out[k] = true
			}
			for k := range y {
				out[k] = true
			}
			return out
		},
		equal: func(x, y map[string]bool) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
		transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
				}
			}
			return out
		},
	}
	in := an.run(c, map[string]bool{})
	exitFact, ok := in[c.Exit]
	if !ok {
		t.Fatalf("exit must be reachable:\n%s", c.dump())
	}
	if !exitFact["a"] || !exitFact["b"] {
		t.Fatalf("may-analysis at exit should include a and b, got %v", exitFact)
	}
}

func TestForwardMustAnalysis(t *testing.T) {
	// Same gen sets with intersection join: b is assigned on only one
	// path, so it MUST NOT appear at the join.
	c := parseFuncBody(t, `
	a := 1
	if a > 0 {
		b := 2
		_ = b
	}
	_ = a`)
	an := forwardAnalysis[map[string]bool]{
		join: func(x, y map[string]bool) map[string]bool {
			out := make(map[string]bool)
			for k := range x {
				if y[k] {
					out[k] = true
				}
			}
			return out
		},
		equal: func(x, y map[string]bool) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
		transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
				}
			}
			return out
		},
	}
	in := an.run(c, map[string]bool{})
	exitFact := in[c.Exit]
	if !exitFact["a"] {
		t.Fatalf("a is assigned on every path, must survive the intersection: %v", exitFact)
	}
	if exitFact["b"] {
		t.Fatalf("b is branch-dependent, must not survive the must-join: %v", exitFact)
	}
}
