package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Formats lists the renderers WriteReport accepts.
var Formats = []string{"text", "json", "markdown", "sarif"}

// WriteReport renders diags in the named format. Paths are shown
// relative to base (the module root) when possible, so output is
// stable across checkouts; pass "" to keep absolute paths.
func WriteReport(w io.Writer, format string, diags []Diagnostic, base string) error {
	switch format {
	case "text":
		return writeText(w, diags, base)
	case "json":
		return writeJSON(w, diags, base)
	case "markdown":
		return writeMarkdown(w, diags, base)
	case "sarif":
		return writeSARIF(w, diags, base)
	}
	return fmt.Errorf("lint: unknown format %q", format)
}

func relPath(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

func writeText(w io.Writer, diags []Diagnostic, base string) error {
	for _, d := range diags {
		d.Pos.Filename = relPath(base, d.Pos.Filename)
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	n := Unsuppressed(diags)
	_, err := fmt.Fprintf(w, "schedlint: %d finding(s), %d suppressed\n", n, len(diags)-n)
	return err
}

// jsonDiagnostic is the machine-readable wire form (the CI artifact).
type jsonDiagnostic struct {
	Check      string `json:"check"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func writeJSON(w io.Writer, diags []Diagnostic, base string) error {
	out := struct {
		Diagnostics  []jsonDiagnostic `json:"diagnostics"`
		Unsuppressed int              `json:"unsuppressed"`
		Suppressed   int              `json:"suppressed"`
	}{Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			Check: d.Check, File: relPath(base, d.Pos.Filename),
			Line: d.Pos.Line, Column: d.Pos.Column,
			Message: d.Message, Suppressed: d.Suppressed, Reason: d.Reason,
		})
		if d.Suppressed {
			out.Suppressed++
		} else {
			out.Unsuppressed++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeMarkdown(w io.Writer, diags []Diagnostic, base string) error {
	if _, err := fmt.Fprintf(w, "# schedlint report\n\n%d finding(s), %d suppressed\n\n",
		Unsuppressed(diags), len(diags)-Unsuppressed(diags)); err != nil {
		return err
	}
	if len(diags) == 0 {
		_, err := fmt.Fprintln(w, "No findings.")
		return err
	}
	if _, err := fmt.Fprintln(w, "| Location | Check | Finding | Status |\n|---|---|---|---|"); err != nil {
		return err
	}
	for _, d := range diags {
		status := "**open**"
		if d.Suppressed {
			status = "allowed: " + d.Reason
		}
		loc := fmt.Sprintf("%s:%d", relPath(base, d.Pos.Filename), d.Pos.Line)
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			loc, d.Check, strings.ReplaceAll(d.Message, "|", `\|`), strings.ReplaceAll(status, "|", `\|`)); err != nil {
			return err
		}
	}
	return nil
}
