package lint

import "go/ast"

// dataflow.go is a small forward dataflow framework over the CFG. A
// check supplies a lattice (join + equality) and a transfer function;
// the framework iterates a worklist to a fixpoint and hands back the
// fact flowing into each reachable block.
//
// Join direction picks the lattice flavour:
//   - may-analyses (union join) answer "can this hold on SOME path?"
//     — e.g. locking's "may a mutex be held here?"
//   - must-analyses (intersection join) answer "does this hold on
//     EVERY path?"
//
// Unreachable blocks never enter the worklist and are absent from the
// result map; checks skip them rather than reporting on dead code.

// A forwardAnalysis describes one dataflow problem. transfer and join
// must be pure: they return fresh facts and never mutate their inputs,
// because in-facts are retained across iterations.
type forwardAnalysis[T any] struct {
	// join computes the least upper bound of two facts arriving at a
	// block from different predecessors (union for may, intersection
	// for must).
	join func(T, T) T
	// equal reports fact equality; the fixpoint terminates when every
	// block's in-fact stops changing.
	equal func(T, T) bool
	// transfer pushes a fact through one block's nodes in order.
	transfer func(*Block, T) T
}

// run iterates to a fixpoint and returns the in-fact of every block
// reachable from the entry. entry is the fact at function entry.
func (a forwardAnalysis[T]) run(c *CFG, entry T) map[*Block]T {
	in := map[*Block]T{c.Entry: entry}
	queued := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := a.transfer(blk, in[blk])
		for _, succ := range blk.Succs {
			next := out
			old, seen := in[succ]
			if seen {
				next = a.join(old, out)
				if a.equal(next, old) {
					continue
				}
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// inspectShallow walks a block node's expression tree without
// descending into function literals: a closure's body belongs to its
// own CFG and must not leak facts into the enclosing function's
// analysis.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}
