package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a loaded view of one Go module: every package parsed and
// type-checked from source, sharing one FileSet. The loader resolves
// module-local imports itself and delegates the standard library to
// the compiler's export data, so it needs no tooling beyond the
// standard library (the repo is dependency-free by policy).
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every loaded file.
	Fset *token.FileSet

	pkgs         map[string]*Package // by import path, including dependencies
	loading      map[string]bool     // import-cycle guard
	std          types.Importer
	deprecated   map[string]bool           // lazy deprecated-API index (hygiene.go)
	deprecatedAt int                       // len(pkgs) when the index was built
	atomicIdx    map[*types.Var]*atomicUse // lazy atomic-access index (atomics.go)
	atomicIdxAt  int                       // len(pkgs) when the index was built
}

// Package is one parsed, type-checked package.
type Package struct {
	// Path is the import path (module path + module-relative dir).
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	directives []directive
}

// LoadModule locates the module containing dir (walking up to go.mod)
// and prepares a loader for it.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	path := modulePathOf(string(data))
	if path == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	m := &Module{
		Root:    root,
		Path:    path,
		Fset:    token.NewFileSet(),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	m.std = importer.Default()
	return m, nil
}

// modulePathOf extracts the module path from go.mod contents.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns to packages and loads each. A
// pattern is a directory relative to the module root ("./cmd/perflab",
// "internal/sim") or a recursive form ending in "/..." ("./...",
// "./internal/..."). Recursive patterns skip testdata, hidden and
// sourceless directories. Results are sorted by import path.
func (m *Module) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		dir := filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory under %s", pat, m.Root)
		}
		if !recursive {
			dirs[dir] = true
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoSources(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, dir := range sorted {
		pkg, err := m.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func hasGoSources(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (m *Module) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, m.Root)
	}
	if rel == "." {
		return m.Path, nil
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path back to its directory.
func (m *Module) dirFor(path string) string {
	if path == m.Path {
		return m.Root
	}
	return filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/")))
}

// loadDir parses and type-checks the package in dir (cached).
func (m *Module) loadDir(dir string) (*Package, error) {
	path, err := m.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := conf.Check(path, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	pkg.directives = parseDirectives(m.Fset, files)
	m.pkgs[path] = pkg
	return pkg, nil
}

// Packages returns every package loaded so far (targets and
// dependencies), sorted by import path — the scope for module-wide
// indexes like the deprecated-API table.
func (m *Module) Packages() []*Package {
	var out []*Package
	for _, p := range m.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// moduleImporter resolves module-local imports from source through the
// loader and everything else through the host compiler's export data.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if hasPathPrefix(path, m.Path) {
		pkg, err := m.loadDir(m.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
