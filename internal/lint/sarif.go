package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning
// ingests. The rendering is deliberately minimal — one run, one tool,
// one result per diagnostic — and deterministic: rules are emitted in
// catalog order and results in the suite's total diagnostic order, so
// two runs over the same tree produce byte-identical documents (CI
// diffs the artifact).
//
// Suppressed findings are still emitted, carrying a `suppressions`
// entry with kind "inSource" and the directive's reason as the
// justification; code-scanning UIs hide them by default but keep them
// auditable, mirroring the text renderer's "(allowed: ...)" tail.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifRules is the rule catalog: every analyzer plus the two
// pseudo-checks (malformed directives, unused allows) that can appear
// as a Diagnostic.Check value.
func sarifRules() []sarifRule {
	var rules []sarifRule
	for _, c := range Checks() {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifText{Text: c.Doc}})
	}
	rules = append(rules,
		sarifRule{ID: "directive", ShortDescription: sarifText{Text: "malformed //lint:allow directive (missing reason or unknown check)"}},
		sarifRule{ID: "unused-allow", ShortDescription: sarifText{Text: "//lint:allow directive that suppresses no finding (stale; delete it)"}},
	)
	return rules
}

func writeSARIF(w io.Writer, diags []Diagnostic, base string) error {
	rules := sarifRules()
	index := map[string]int{}
	for i, r := range rules {
		index[r.ID] = i
	}
	results := []sarifResult{}
	for _, d := range diags {
		res := sarifResult{
			RuleID:    d.Check,
			RuleIndex: index[d.Check],
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(base, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
		if d.Suppressed {
			res.Level = "note"
			res.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Reason}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "schedlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
