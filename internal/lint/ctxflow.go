package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxflowCheck enforces the cancellation discipline of the runtime's
// submission paths (internal/core, internal/pool, internal/serve):
// once a context is in scope, a blocking channel send, channel
// receive, or queue wait reachable from that point must sit under a
// select with a ctx.Done() or stop-channel arm — otherwise cancelling
// a submission can wedge the calling goroutine (and with it a
// dispatcher or the admission baton) forever.
//
// "In scope" means a context.Context parameter of the analyzed
// function, or a local context binding; the binding point is
// propagated forward over the CFG, so operations on paths before a
// mid-function binding are not flagged. Closures are analyzed
// independently and only see their own parameters and bindings: a
// captured context does not put the closure in scope, which keeps
// deliberately-detached goroutines (the engine's baton hand-back)
// quiet without annotations.
//
// Exemptions: selects with a default arm never block; receives from a
// ctx.Done() call or from a channel whose name marks it as a shutdown
// signal (stop/done/quit/close/exit) ARE the cancellation wait.
// Everything else carries a reasoned //lint:allow ctxflow stating why
// the operation is bounded.
var ctxflowCheck = &Check{
	Name: "ctxflow",
	Doc:  "require blocking channel ops and queue waits reachable with a context in scope to carry a ctx.Done()/stop-channel arm",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	if !matchesAny(p.Pkg.Path, p.Cfg.Ctxflow) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					ctxflowFunc(p, n.Type, n.Body)
				}
			case *ast.FuncLit:
				ctxflowFunc(p, n.Type, n.Body)
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxflowFunc analyzes one function body: finds where a context enters
// scope, propagates that fact forward over the CFG, and flags
// unguarded blocking operations at in-scope points.
func ctxflowFunc(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	entry := false
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					entry = true
				}
			}
		}
	}
	g := BuildCFG(body)

	// Binding statements activate scope mid-function. They are simple
	// statements, so they appear directly as block nodes.
	bindings := map[ast.Node]bool{}
	if !entry {
		for _, b := range g.Blocks {
			for _, n := range b.Nodes {
				if bindsContext(p, n) {
					bindings[n] = true
				}
			}
		}
		if len(bindings) == 0 {
			return
		}
	}

	an := forwardAnalysis[bool]{
		join:  func(a, b bool) bool { return a || b },
		equal: func(a, b bool) bool { return a == b },
		transfer: func(b *Block, in bool) bool {
			out := in
			for _, n := range b.Nodes {
				if bindings[n] {
					out = true
				}
			}
			return out
		},
	}
	in := an.run(g, entry)

	guarded := map[*ast.SelectStmt]bool{}
	for _, b := range g.Blocks {
		inScope, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			if inScope {
				ctxflowNode(p, g, guarded, n)
			}
			if bindings[n] {
				inScope = true
			}
		}
	}
}

// bindsContext reports whether a block node introduces a local
// context.Context binding (:=, =, or var declaration).
func bindsContext(p *Pass, n ast.Node) bool {
	check := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.objectOf(id)
		return obj != nil && isContextType(obj.Type())
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if check(lhs) {
				return true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if check(name) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// ctxflowNode flags the unguarded blocking operations in one block
// node at an in-scope program point.
func ctxflowNode(p *Pass, g *CFG, guardedCache map[*ast.SelectStmt]bool, n ast.Node) {
	if sc, ok := g.SelectComm[n]; ok {
		// A select clause head. With a default arm the select cannot
		// block; with a Done/stop arm somewhere the wait is guarded.
		if sc.HasDefault {
			return
		}
		guardArm, cached := guardedCache[sc.Select]
		if !cached {
			guardArm = selectHasGuardArm(p, sc.Select)
			guardedCache[sc.Select] = guardArm
		}
		if !guardArm {
			p.Reportf(n.Pos(), "blocking select communication with a context in scope and no ctx.Done()/stop arm (add a cancellation arm)")
		}
		return
	}
	if rs, ok := g.RangeX[n]; ok {
		if tv, ok := p.Pkg.Info.Types[rs.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isGuardChannel(p, rs.X) {
				p.Reportf(rs.X.Pos(), "range over channel with a context in scope blocks every iteration with no cancellation arm (close the channel on shutdown, or restructure as a select loop)")
			}
		}
		return
	}
	inspectShallow(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.SendStmt:
			p.Reportf(c.Pos(), "blocking channel send with a context in scope and no ctx.Done()/stop arm (wrap in a select with a cancellation arm)")
		case *ast.UnaryExpr:
			if c.Op == token.ARROW && !isGuardChannel(p, c.X) {
				p.Reportf(c.Pos(), "blocking channel receive with a context in scope and no ctx.Done()/stop arm (wrap in a select with a cancellation arm)")
			}
		case *ast.CallExpr:
			if name := syncWaitCall(p, c); name != "" {
				p.Reportf(c.Pos(), "blocking sync.%s.Wait with a context in scope (ensure the waited work observes cancellation, or annotate why the wait is bounded)", name)
			}
		}
		return true
	})
}

// selectHasGuardArm reports whether any clause of the select receives
// from a cancellation channel.
func selectHasGuardArm(p *Pass, s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		comm := c.(*ast.CommClause).Comm
		var recv ast.Expr
		switch comm := comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv != nil && isGuardChannel(p, recv) {
			return true
		}
	}
	return false
}

// isGuardChannel reports whether a receive from e is itself the
// cancellation wait: a ctx.Done() call, or a channel whose printed
// name marks it as a shutdown signal.
func isGuardChannel(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if tv, ok := p.Pkg.Info.Types[sel.X]; ok && isContextType(tv.Type) {
				return true
			}
		}
	}
	name := strings.ToLower(types.ExprString(e))
	for _, marker := range []string{"stop", "done", "quit", "close", "exit"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// syncWaitCall returns "WaitGroup" or "Cond" when the call is a
// sync.WaitGroup.Wait or sync.Cond.Wait queue wait, else "".
func syncWaitCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.objectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
