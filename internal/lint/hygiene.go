package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// hygieneCheck enforces the public-surface conventions:
//
//   - command-line tools parse and validate flag values through the
//     internal/cli validators, so every tool names the offending flag
//     in identical diagnostics (PR 4's contract) — bare strconv
//     parsing and the unprefixed cli.Parse* helpers are flagged in
//     cmd/ packages;
//   - a cmd/ package declaring a listen-address flag (a flag.String /
//     StringVar whose name ends in "addr") must validate it with
//     cli.AddrFlag, so a bad -addr fails naming its flag instead of
//     surfacing as a confusing net.Listen bind error (the contract
//     engineview and perflab serve follow);
//   - no new call sites of deprecated API: any identifier whose
//     declaration doc carries a "Deprecated:" paragraph is flagged
//     when used outside its declaring package (the migration note in
//     the doc says what to use instead).
var hygieneCheck = &Check{
	Name: "hygiene",
	Doc:  "route cmd/ flag parsing through internal/cli and forbid new uses of deprecated API",
	Run:  runHygiene,
}

// strconvParsers are the raw string-parsing entry points that bypass
// the flag-naming validators.
var strconvParsers = map[string]bool{
	"Atoi": true, "ParseInt": true, "ParseUint": true, "ParseFloat": true, "ParseBool": true,
}

func runHygiene(p *Pass) {
	deprecated := p.Mod.deprecatedIndex()
	inCmd := matchesAny(p.Pkg.Path, p.Cfg.CmdPkgs)
	// Listen-address flags are collected package-wide first: the
	// declaration and the cli.AddrFlag validation normally live in
	// different functions (flag setup vs. argument resolution), so the
	// rule is "a package declaring one must validate somewhere".
	var addrDecls []addrFlagDecl
	usesAddrFlag := false
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && inCmd {
				if name, ok := flagAddrDecl(p, call); ok {
					addrDecls = append(addrDecls, addrFlagDecl{pos: call.Pos(), name: name})
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() == p.Pkg.Path {
				return true
			}
			if key := objectKey(obj); deprecated[key] {
				p.Reportf(id.Pos(), "use of deprecated %s (its doc names the replacement)", key)
			}
			if inCmd {
				if fn, ok := obj.(*types.Func); ok {
					switch {
					case fn.Pkg().Path() == "strconv" && strconvParsers[fn.Name()]:
						p.Reportf(id.Pos(), "strconv.%s in a command: parse flag values through the internal/cli validators", fn.Name())
					case p.Cfg.CLIPkg != "" && fn.Pkg().Path() == p.Cfg.CLIPkg && fn.Name() == "AddrFlag":
						usesAddrFlag = true
					case p.Cfg.CLIPkg != "" && fn.Pkg().Path() == p.Cfg.CLIPkg && strings.HasPrefix(fn.Name(), "Parse"):
						p.Reportf(id.Pos(), "cli.%s does not name the offending flag: use the *Flag wrapper (e.g. cli.ProcsFlag)", fn.Name())
					}
				}
			}
			return true
		})
	}
	if !usesAddrFlag {
		for _, d := range addrDecls {
			p.Reportf(d.pos, "flag -%s looks like a listen address but the package never calls cli.AddrFlag: validate it so a bad value names its flag instead of failing inside net.Listen", d.name)
		}
	}
}

type addrFlagDecl struct {
	pos  token.Pos
	name string
}

// flagAddrDecl reports whether call declares a string flag whose name
// ends in "addr" (flag.String / flag.StringVar, top-level or on a
// *FlagSet), returning the flag's name.
func flagAddrDecl(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "flag" {
		return "", false
	}
	nameArg := -1
	switch fn.Name() {
	case "String":
		nameArg = 0
	case "StringVar":
		nameArg = 1
	default:
		return "", false
	}
	if len(call.Args) <= nameArg {
		return "", false
	}
	lit, ok := call.Args[nameArg].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.HasSuffix(strings.ToLower(name), "addr") {
		return "", false
	}
	return name, true
}

// objectKey is the stable cross-package identity used by the
// deprecated index: pkgpath.Name, with the receiver type inserted for
// methods (pkgpath.Type.Method).
func objectKey(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
			}
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// deprecatedIndex scans every loaded package (targets and
// dependencies) for declarations whose doc comment carries a
// "Deprecated:" paragraph, keyed by objectKey. The index is cached per
// loaded-package count: loading new packages (which may declare more
// deprecated API) invalidates it.
func (m *Module) deprecatedIndex() map[string]bool {
	if m.deprecated != nil && m.deprecatedAt == len(m.pkgs) {
		return m.deprecated
	}
	idx := map[string]bool{}
	for _, pkg := range m.Packages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if isDeprecated(d.Doc) {
						markDeprecated(idx, pkg, d.Name)
					}
				case *ast.GenDecl:
					declDoc := d.Doc
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if isDeprecated(sp.Doc) || isDeprecated(declDoc) {
								markDeprecated(idx, pkg, sp.Name)
							}
						case *ast.ValueSpec:
							if isDeprecated(sp.Doc) || isDeprecated(declDoc) {
								for _, name := range sp.Names {
									markDeprecated(idx, pkg, name)
								}
							}
						}
					}
				}
			}
		}
	}
	m.deprecated, m.deprecatedAt = idx, len(m.pkgs)
	return idx
}

func markDeprecated(idx map[string]bool, pkg *Package, name *ast.Ident) {
	if obj := pkg.Info.Defs[name]; obj != nil {
		idx[objectKey(obj)] = true
	}
}

// isDeprecated reports whether a doc comment contains a line starting
// with the standard "Deprecated:" marker.
func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}
