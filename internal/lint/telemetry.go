package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// telemetryCheck enforces the observability layer's two conventions
// (PR 1): exporter and sink errors are never dropped — a trace that
// silently truncated is worse than no trace, because the forensics
// and perf-lab tooling would attribute costs from a partial stream —
// and every emitted telemetry.Event carries an explicit Step, since
// the per-step invariant verifier (tracecheck) and the per-phase
// metrics series both key on it.
var telemetryCheck = &Check{
	Name: "telemetry",
	Doc:  "forbid discarded exporter/sink errors and Event literals without an explicit Step field",
	Run:  runTelemetry,
}

func runTelemetry(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					p.checkDiscardedError(call)
				}
			case *ast.DeferStmt:
				p.checkDiscardedError(n.Call)
			case *ast.GoStmt:
				p.checkDiscardedError(n.Call)
			case *ast.CompositeLit:
				p.checkEventLiteral(n)
			}
			return true
		})
	}
}

// checkDiscardedError flags a statement-position call into an exporter
// package whose error result is dropped on the floor.
func (p *Pass) checkDiscardedError(call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !matchesAny(fn.Pkg().Path(), p.Cfg.ExporterPkgs) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return
	}
	p.Reportf(call.Pos(), "%s.%s returns an error that is discarded: exporter/sink errors must be checked", fn.Pkg().Name(), fn.Name())
}

// calleeFunc resolves a call's static callee, if it is a plain
// function or method reference.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.objectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.objectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// checkEventLiteral flags keyed composite literals of the configured
// event types that omit the Step field. Step 0 is a real phase, so the
// zero value is not a safe default: an event without an explicit step
// is almost always a copy-paste that will land in phase 0's bucket.
func (p *Pass) checkEventLiteral(lit *ast.CompositeLit) {
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	qualified := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	found := false
	for _, want := range p.Cfg.EventTypes {
		if qualified == want {
			found = true
			break
		}
	}
	if !found || len(lit.Elts) == 0 {
		return
	}
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal names every field, Step included
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Step" {
			return
		}
	}
	if keyed {
		short := qualified[strings.LastIndex(qualified, "/")+1:]
		p.Reportf(lit.Pos(), "%s literal without an explicit Step field: events must carry their program step", short)
	}
}
