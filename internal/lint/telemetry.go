package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// telemetryCheck enforces the observability layer's conventions:
// exporter and sink errors are never dropped — a trace that silently
// truncated is worse than no trace, because the forensics and
// perf-lab tooling would attribute costs from a partial stream —
// every emitted telemetry.Event carries an explicit Step, since the
// per-step invariant verifier (tracecheck) and the per-phase metrics
// series both key on it, every span collection started in the
// span-emitting packages is sealed before the function returns, and
// every armed anomaly detector has a bundle capture wired to it.
var telemetryCheck = &Check{
	Name: "telemetry",
	Doc:  "forbid discarded exporter/sink errors, Event literals without an explicit Step field, unsealed span collections, and watchdogs armed without bundle capture",
	Run:  runTelemetry,
}

func runTelemetry(p *Pass) {
	spanPkg := false
	for _, path := range p.Cfg.SpanPkgs {
		if p.Pkg.Path == path {
			spanPkg = true
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					p.checkDiscardedError(call)
				}
			case *ast.DeferStmt:
				p.checkDiscardedError(n.Call)
			case *ast.GoStmt:
				p.checkDiscardedError(n.Call)
			case *ast.CompositeLit:
				p.checkEventLiteral(n)
			case *ast.FuncDecl:
				if spanPkg {
					p.checkSpanBalance(n)
				}
				p.checkTriageWiring(n)
			}
			return true
		})
	}
}

// checkDiscardedError flags a statement-position call into an exporter
// package whose error result is dropped on the floor.
func (p *Pass) checkDiscardedError(call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !matchesAny(fn.Pkg().Path(), p.Cfg.ExporterPkgs) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return
	}
	p.Reportf(call.Pos(), "%s.%s returns an error that is discarded: exporter/sink errors must be checked", fn.Pkg().Name(), fn.Name())
}

// calleeFunc resolves a call's static callee, if it is a plain
// function or method reference.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.objectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.objectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// checkSpanBalance enforces span hygiene in the span-emitting packages
// (Config.SpanPkgs): a function that starts a span collection
// (Tracer.StartSubmission) must seal it — call Active.End or
// Active.Abandon, directly or in a defer — and must not return between
// the start and the first seal. An unsealed collection leaks its spans
// and its trace ID: the /metrics exemplar pointing at it would resolve
// to nothing. The rule is lexical, so conditional seals pass as long
// as they sit before every return (the shape pool.SubmitPhases and the
// root runObserved use: Execute, then one seal block, then the
// returns).
func (p *Pass) checkSpanBalance(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	var start, seal token.Pos
	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case p.isSpanTraceMethod(n, "Tracer", "StartSubmission"):
				if !start.IsValid() {
					start = n.Pos()
				}
			case p.isSpanTraceMethod(n, "Active", "End"), p.isSpanTraceMethod(n, "Active", "Abandon"):
				if !seal.IsValid() {
					seal = n.Pos()
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
		return true
	})
	if !start.IsValid() {
		return
	}
	if !seal.IsValid() || seal < start {
		p.Reportf(start, "StartSubmission result is never sealed: call End or Abandon before every return, or the span collection leaks open")
		return
	}
	for _, r := range returns {
		// A return whose own expression performs the seal
		// (`return at.End(...).TraceID`) ends after the seal position
		// and is fine; only returns wholly before the seal leak.
		if start < r.Pos() && r.End() < seal {
			p.Reportf(r.Pos(), "return between StartSubmission and its End/Abandon seal: this path leaks the span collection open")
		}
	}
}

// checkTriageWiring enforces the auto-triage convention, module-wide:
// a function that arms an anomaly detector (watchdog.New) must also
// wire its firings to a diagnostic-bundle capture — call
// bundle.Attach, or drive Capturer.Capture itself — or a detector
// trigger evaporates into a log line with no profile, frozen flight
// trace, or exemplar spans to triage from. Like the span-balance rule
// this is lexical: an Attach behind a "bundles enabled?" conditional
// in the same function counts, because the wiring decision is then
// visibly local rather than forgotten.
func (p *Pass) checkTriageWiring(fd *ast.FuncDecl) {
	if p.Cfg.WatchdogPkg == "" || p.Cfg.BundlePkg == "" || fd.Body == nil {
		return
	}
	var armed token.Pos
	wired := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case p.Cfg.WatchdogPkg:
			if fn.Name() == "New" && !armed.IsValid() {
				armed = call.Pos()
			}
		case p.Cfg.BundlePkg:
			if fn.Name() == "Attach" || fn.Name() == "Capture" {
				wired = true
			}
		}
		return true
	})
	if armed.IsValid() && !wired {
		p.Reportf(armed, "watchdog.New without a bundle capture wired: call bundle.Attach (or Capturer.Capture) in the same function so firings produce a diagnostic bundle, not just a log line")
	}
}

// isSpanTraceMethod reports whether call's static callee is the named
// method on the named receiver type of the configured span-trace
// package.
func (p *Pass) isSpanTraceMethod(call *ast.CallExpr, recvType, method string) bool {
	if p.Cfg.SpanTracePkg == "" {
		return false
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != p.Cfg.SpanTracePkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recvType
}

// checkEventLiteral flags keyed composite literals of the configured
// event types that omit the Step field. Step 0 is a real phase, so the
// zero value is not a safe default: an event without an explicit step
// is almost always a copy-paste that will land in phase 0's bucket.
func (p *Pass) checkEventLiteral(lit *ast.CompositeLit) {
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	qualified := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	found := false
	for _, want := range p.Cfg.EventTypes {
		if qualified == want {
			found = true
			break
		}
	}
	if !found || len(lit.Elts) == 0 {
		return
	}
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal names every field, Step included
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Step" {
			return
		}
	}
	if keyed {
		short := qualified[strings.LastIndex(qualified, "/")+1:]
		p.Reportf(lit.Pos(), "%s literal without an explicit Step field: events must carry their program step", short)
	}
}
