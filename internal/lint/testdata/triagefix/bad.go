// Package triagefix exercises the telemetry check's triage-wiring
// rule against the real watchdog and bundle packages: a detector
// armed with no bundle capture in reach.
package triagefix

import (
	"repro/internal/livemetrics"
	"repro/internal/watchdog"
)

// ArmUnwired arms a detector whose firings go nowhere.
func ArmUnwired(src func() livemetrics.Snapshot) (*watchdog.Watchdog, error) {
	return watchdog.New(src, watchdog.DefaultRules(), watchdog.Options{})
}
