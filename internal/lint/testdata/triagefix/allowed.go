package triagefix

import (
	"repro/internal/bundle"
	"repro/internal/livemetrics"
	"repro/internal/watchdog"
)

// ArmWired arms a detector and routes its firings to bundle capture.
func ArmWired(src func() livemetrics.Snapshot, capt *bundle.Capturer) (*watchdog.Watchdog, error) {
	wd, err := watchdog.New(src, watchdog.DefaultRules(), watchdog.Options{})
	if err != nil {
		return nil, err
	}
	bundle.Attach(wd, capt, nil)
	return wd, nil
}

// ArmManual drives the capturer directly instead of through Attach.
func ArmManual(src func() livemetrics.Snapshot, capt *bundle.Capturer) (*watchdog.Watchdog, error) {
	wd, err := watchdog.New(src, watchdog.DefaultRules(), watchdog.Options{})
	if err != nil {
		return nil, err
	}
	wd.OnTrigger(func(t watchdog.Trigger) {
		_, _ = capt.Capture(t)
	})
	return wd, nil
}

// ArmBare is an annotated exception: a detector armed capture-free on
// purpose.
func ArmBare(src func() livemetrics.Snapshot) (*watchdog.Watchdog, error) {
	//lint:allow telemetry fixture: detector under test, capture deliberately unwired
	return watchdog.New(src, watchdog.DefaultRules(), watchdog.Options{})
}
