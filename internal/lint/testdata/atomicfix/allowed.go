package atomicfix

import "repro/internal/lint/testdata/atomicfix/counter"

// NewGauge owns its value before publication: constructor writes are
// exempt.
func NewGauge() *gauge {
	g := &gauge{}
	g.val = 0
	return g
}

// Snapshot reads through a by-value copy: the local struct cannot race
// with the shared instance.
func Snapshot(g gauge) int64 {
	return g.val
}

// CrossRead reads counter's field plainly from a package performing no
// atomic access on it: presumed a post-barrier snapshot, not flagged.
func CrossRead(s *counter.Shared) int64 {
	return s.N
}

// Audited is an annotated plain read in the atomically-accessing
// package.
func Audited(g *gauge) int64 {
	return g.val //lint:allow atomics fixture: post-barrier read, documented exception
}
