// Package atomicfix exercises the atomics check: once a field is
// accessed via sync/atomic anywhere in the module, every plain write,
// plain same-package read, and address escape is a finding.
package atomicfix

import (
	"sync/atomic"

	"repro/internal/lint/testdata/atomicfix/counter"
)

// gauge's val field is atomically bumped below, establishing the
// discipline the plain accesses violate.
type gauge struct {
	val int64
}

// Bump is the sanctioned access.
func Bump(g *gauge) {
	atomic.AddInt64(&g.val, 1)
}

// Reset writes the field plainly.
func Reset(g *gauge) {
	g.val = 0
}

// Read reads the field plainly in the package that bumps it.
func Read(g *gauge) int64 {
	return g.val
}

// Alias lets the address escape outside sync/atomic.
func Alias(g *gauge) *int64 {
	return &g.val
}

// CrossWrite writes another package's atomic field plainly — flagged
// even though the atomic accesses all live in counter.
func CrossWrite(s *counter.Shared) {
	s.N = 0
}
