// Package counter is atomicfix's in-module dependency: its field is
// accessed atomically here, so the module-wide index protects it
// against plain writes from the importing fixture package.
package counter

import "sync/atomic"

// Shared is a counter whose N field is atomically maintained.
type Shared struct {
	N int64
}

// Bump is the sanctioned access path.
func (s *Shared) Bump() {
	atomic.AddInt64(&s.N, 1)
}
