// Package directivefix exercises the directive rules: a suppression
// without a reason is itself a diagnostic, as is one naming no or an
// unknown check.
package directivefix

// Bare has no check name and no reason.
//
//lint:allow
func Bare() {}

// NoReason names a check but gives no reason.
//
//lint:allow determinism
func NoReason() {}

// Unknown names a check that does not exist.
//
//lint:allow nosuchcheck because typos happen
func Unknown() {}

// Stale is well-formed but suppresses nothing: the ordinary run stays
// silent about it, and only the -unused-allows audit reports it.
func Stale() int {
	return 0 //lint:allow locking fixture: nothing on this line ever violated the locking rules
}
