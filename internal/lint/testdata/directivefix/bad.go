// Package directivefix exercises the directive rules: a suppression
// without a reason is itself a diagnostic, as is one naming no or an
// unknown check.
package directivefix

// Bare has no check name and no reason.
//
//lint:allow
func Bare() {}

// NoReason names a check but gives no reason.
//
//lint:allow determinism
func NoReason() {}

// Unknown names a check that does not exist.
//
//lint:allow nosuchcheck because typos happen
func Unknown() {}
