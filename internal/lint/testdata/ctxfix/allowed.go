package ctxfix

import "context"

// Guarded sends under a select with a ctx.Done() arm.
func Guarded(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// WithDefault cannot block.
func WithDefault(ctx context.Context, ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// StopRecv's receive is itself the shutdown wait (stop-named channel).
func StopRecv(ctx context.Context, stop chan struct{}) {
	<-stop
}

// Detached closures do not inherit the caller's context: the send is
// deliberate fire-and-forget, quiet without an annotation.
func Detached(ctx context.Context, ch chan int) {
	go func() {
		ch <- 1
	}()
}

// EarlyOps precede any context binding and are clean.
func EarlyOps(ch chan int) {
	ch <- 1
	<-ch
}

// Audited is an annotated exception.
func Audited(ctx context.Context, ch chan int) {
	ch <- 2 //lint:allow ctxflow fixture: the send is bounded by the test harness
}
