// Package ctxfix exercises the ctxflow check: blocking channel
// operations and queue waits reachable with a context in scope and no
// cancellation arm.
package ctxfix

import (
	"context"
	"sync"
)

// NakedSend blocks on a send with ctx in scope.
func NakedSend(ctx context.Context, ch chan int) {
	ch <- 1
}

// NakedRecv blocks on a receive with ctx in scope.
func NakedRecv(ctx context.Context, ch chan int) int {
	return <-ch
}

// LateCtx binds a context mid-function: the first send precedes the
// binding and is clean, the second is flagged.
func LateCtx(ch chan int) context.Context {
	ch <- 1
	ctx := context.Background()
	ch <- 2
	return ctx
}

// BarrierWait waits on a WaitGroup with ctx in scope.
func BarrierWait(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait()
}

// RangeRecv blocks every iteration on an unguarded receive.
func RangeRecv(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// UnguardedSelect has neither a default nor a cancellation arm: both
// communications are findings.
func UnguardedSelect(ctx context.Context, a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
