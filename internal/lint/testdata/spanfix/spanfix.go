// Package spanfix is the telemetry check's span-balance fixture: the
// good shapes (seal before return, conditional seal before every
// return, deferred seal), the two violations (return between start and
// seal, start never sealed), and a suppressed case.
package spanfix

import "repro/internal/spantrace"

func work() {}

// sealedDirect is the canonical good shape: start, work, seal, return.
func sealedDirect(t *spantrace.Tracer) uint64 {
	at := t.StartSubmission(spantrace.SubmissionInfo{Scheduler: "afs", Procs: 2, Phases: 1})
	work()
	return at.End("ok").TraceID
}

// sealedConditionally mirrors pool.SubmitPhases: the start and the
// seal are both conditional, but the seal block sits lexically before
// every return, so no path can leave the collection open.
func sealedConditionally(t *spantrace.Tracer, fail bool) {
	var at *spantrace.Active
	if t != nil {
		at = t.StartSubmission(spantrace.SubmissionInfo{})
	}
	work()
	if at != nil {
		if fail {
			at.Abandon()
		} else {
			at.End("ok")
		}
	}
}

// sealedByDefer seals on every path by construction.
func sealedByDefer(t *spantrace.Tracer) {
	at := t.StartSubmission(spantrace.SubmissionInfo{})
	defer at.End("ok")
	work()
}

// returnsBeforeSeal leaks the collection on the early-error path.
func returnsBeforeSeal(t *spantrace.Tracer, err error) error {
	at := t.StartSubmission(spantrace.SubmissionInfo{})
	if err != nil {
		return err
	}
	at.End("ok")
	return nil
}

// neverSealed starts a collection and forgets it entirely.
func neverSealed(t *spantrace.Tracer) {
	t.StartSubmission(spantrace.SubmissionInfo{})
	work()
}

// allowedLeak shows the suppression path: the directive must carry a
// reason and names the telemetry check.
func allowedLeak(t *spantrace.Tracer) {
	//lint:allow telemetry fixture: intentional leak demonstrating suppression
	t.StartSubmission(spantrace.SubmissionInfo{})
}
