// Package determfix exercises the determinism check: every construct
// in this file is a violation. The fixture test points the check's
// Deterministic group at this package.
package determfix

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock twice.
func Clock() float64 {
	t0 := time.Now()
	return float64(time.Since(t0))
}

// Draw uses the process-global rand stream.
func Draw(n int) int {
	return rand.Intn(n)
}

// Sum folds a map in iteration order.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Spawn starts a goroutine.
func Spawn(done chan struct{}) {
	go close(done)
}
