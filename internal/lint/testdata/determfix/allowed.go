package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded builds a seeded generator — the approved pattern, no
// directive needed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Keys iterates a map but is annotated: the result is sorted, so the
// iteration order cannot leak.
func Keys(m map[int]float64) []int {
	var out []int
	for k := range m { //lint:allow determinism fixture: result is sorted immediately below
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Stamp is an annotated wall-clock exception (directive on the line
// above the read).
func Stamp() time.Time {
	//lint:allow determinism fixture: annotated exception with a reason
	return time.Now()
}
