package leakfix

import "sync"

// Bounded runs to completion: exit is trivially reachable.
func Bounded(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Drain ranges over a channel the producer closes on shutdown.
func Drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Stoppable's loop has a stop arm that returns.
func Stoppable(ch chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-stop:
				return
			}
		}
	}()
}

// Contract spawns an opaque body under a documented drain contract.
func Contract(r Runner) {
	go r.Run() //lint:allow leaks fixture: the runner's Run returns when its input closes
}
