// Package leakfix exercises the leaks check: go statements whose
// bodies provably never exit, or cannot be analyzed at all.
package leakfix

// Runner is an opaque interface: a goroutine spawned on it cannot be
// proven to drain.
type Runner interface {
	Run()
}

// Spin spawns a loop with no escape.
func Spin() {
	go func() {
		for {
		}
	}()
}

// poller's run loop never exits; the method body is resolved through
// the go statement.
type poller struct{ n int }

func (p *poller) run() {
	for {
		p.n++
	}
}

// PollForever spawns the non-terminating method.
func PollForever(p *poller) {
	go p.run()
}

// Opaque spawns an interface method the analyzer cannot see.
func Opaque(r Runner) {
	go r.Run()
}
