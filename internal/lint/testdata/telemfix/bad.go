// Package telemfix exercises the telemetry check against the real
// telemetry package: a discarded exporter error and an Event literal
// without an explicit Step.
package telemfix

import (
	"io"

	"repro/internal/telemetry"
)

// Dump discards the exporter's error.
func Dump(w io.Writer, events []telemetry.Event) {
	telemetry.WriteJSONL(w, events)
}

// Emit builds an event with no Step field.
func Emit(s telemetry.Sink, proc int) {
	s.Emit(telemetry.Event{Kind: telemetry.KindExec, Proc: proc})
}
