package telemfix

import (
	"io"

	"repro/internal/telemetry"
)

// DumpChecked propagates the exporter's error.
func DumpChecked(w io.Writer, events []telemetry.Event) error {
	return telemetry.WriteJSONL(w, events)
}

// EmitStep carries its program step (Step: 0 is explicit, not
// defaulted).
func EmitStep(s telemetry.Sink, step int) {
	s.Emit(telemetry.Event{Kind: telemetry.KindExec, Step: step})
}

// DumpBestEffort is an annotated exception.
func DumpBestEffort(w io.Writer, events []telemetry.Event) {
	//lint:allow telemetry fixture: best-effort debug dump, errors deliberately ignored
	telemetry.WriteJSONL(w, events)
}
