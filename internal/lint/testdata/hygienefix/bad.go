// Package hygienefix exercises the hygiene check. The fixture test
// lists this package under CmdPkgs, so it plays the role of a
// command-line tool.
package hygienefix

import (
	"flag"
	"strconv"

	"repro/internal/cli"
	"repro/internal/lint/testdata/hygienefix/oldapi"
)

// Workers parses a flag value with bare strconv.
func Workers(v string) (int, error) {
	return strconv.Atoi(v)
}

// Procs uses the unprefixed parser, losing the offending flag's name.
func Procs(v string) ([]int, error) {
	return cli.ParseProcs(v)
}

// Addr declares a listen-address flag, but the package never
// validates it with cli.AddrFlag.
var Addr = flag.String("addr", "localhost:0", "listen address")

// Old pins the deprecated simulate entry point.
var Old = oldapi.OldSimulate
