// Package oldapi is a fixture-local legacy shim: it exists so the
// hygiene fixture can pin a use of deprecated API without the module
// having to keep a real deprecated symbol around.
package oldapi

// OldSimulate is the legacy options-struct entry point.
//
// Deprecated: use the variadic options form instead.
func OldSimulate() {}
