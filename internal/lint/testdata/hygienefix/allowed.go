package hygienefix

import (
	"repro/internal/cli"
	"repro/internal/lint/testdata/hygienefix/oldapi"
)

// WorkersChecked validates through the shared helpers.
func WorkersChecked(n int) error {
	return cli.PositiveInt("-workers", n)
}

// ProcsChecked names the flag in its diagnostics.
func ProcsChecked(v string) ([]int, error) {
	return cli.ProcsFlag("-procs", v)
}

// OldAllowed keeps one annotated legacy reference.
//
//lint:allow hygiene fixture: legacy migration shim retained deliberately
var OldAllowed = oldapi.OldSimulate
