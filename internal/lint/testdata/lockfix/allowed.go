package lockfix

import "sync"

// Guarded is the disciplined pattern: pointer receivers, unlock before
// blocking, defer on multi-return paths.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Get uses defer-unlock, so the early return is fine.
func (g *Guarded) Get(fallback bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fallback {
		return 0
	}
	return g.n
}

// Publish snapshots under the lock and sends after releasing it.
func (g *Guarded) Publish(ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

// Notify is an annotated exception: the channel is buffered by
// contract and cannot block.
func (g *Guarded) Notify(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n //lint:allow locking fixture: channel is buffered by contract and never blocks
}
