// Package lockfix exercises the locking check: copied lock-bearing
// values, a mutex held across blocking operations, and a return with
// the mutex still held.
package lockfix

import "sync"

// Box carries a mutex by value.
type Box struct {
	mu sync.Mutex
	n  int
}

// ByValue copies its lock-bearing receiver.
func (b Box) ByValue() int {
	return b.n
}

// Send holds mu across a channel send.
func Send(b *Box, ch chan int) {
	b.mu.Lock()
	ch <- b.n
	b.mu.Unlock()
}

// Leak returns with mu held on the early path.
func Leak(b *Box, bad bool) int {
	b.mu.Lock()
	if bad {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// Drain copies lock-bearing elements by value.
func Drain(boxes []Box) int {
	total := 0
	for _, b := range boxes {
		total += b.n
	}
	return total
}

// Forward calls Submit with the lock held (deferred unlock pins the
// mutex to function exit, so the call happens inside the critical
// section).
func Forward(b *Box, x interface{ Submit() }) {
	b.mu.Lock()
	defer b.mu.Unlock()
	x.Submit()
}
