// Package lockfix exercises the locking check: copied lock-bearing
// values, a mutex held across blocking operations, and a return with
// the mutex still held.
package lockfix

import "sync"

// Box carries a mutex by value.
type Box struct {
	mu sync.Mutex
	n  int
}

// ByValue copies its lock-bearing receiver.
func (b Box) ByValue() int {
	return b.n
}

// Send holds mu across a channel send.
func Send(b *Box, ch chan int) {
	b.mu.Lock()
	ch <- b.n
	b.mu.Unlock()
}

// Leak returns with mu held on the early path.
func Leak(b *Box, bad bool) int {
	b.mu.Lock()
	if bad {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// Drain copies lock-bearing elements by value.
func Drain(boxes []Box) int {
	total := 0
	for _, b := range boxes {
		total += b.n
	}
	return total
}

// Forward calls Submit with the lock held (deferred unlock pins the
// mutex to function exit, so the call happens inside the critical
// section).
func Forward(b *Box, x interface{ Submit() }) {
	b.mu.Lock()
	defer b.mu.Unlock()
	x.Submit()
}

// BranchLeak unlocks on only one branch; the fall-through return may
// still hold mu. A linear source-order scan forgets the lock after the
// if-body's unlock — only the CFG join keeps it may-held.
func BranchLeak(b *Box, done bool) int {
	b.mu.Lock()
	if done {
		b.mu.Unlock()
	}
	return b.n
}

// GotoLeak jumps over the unlock; the labeled return is reachable with
// mu held only along the goto edge.
func GotoLeak(b *Box) int {
	b.mu.Lock()
	if b.n > 0 {
		goto out
	}
	b.mu.Unlock()
	return 0
out:
	return b.n
}

// LoopEscape breaks out of the outer loop with the lock held; the send
// after the loop is reachable inside the critical section only via the
// labeled break edge.
func LoopEscape(b *Box, ch chan int) {
outer:
	for {
		b.mu.Lock()
		for i := 0; i < 10; i++ {
			if i == b.n {
				break outer
			}
		}
		b.mu.Unlock()
	}
	ch <- 1
}

// DeferredBranch defers the unlock on one path only; the other path
// returns with mu held and nothing pending.
func DeferredBranch(b *Box, flip bool) int {
	b.mu.Lock()
	if flip {
		defer b.mu.Unlock()
		return b.n
	}
	return b.n
}
