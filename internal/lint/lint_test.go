package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestFixture -update
var update = flag.Bool("update", false, "rewrite golden files")

// The module is loaded once and shared: every fixture test and the
// self-lint test reuse the same parsed+type-checked dependency set.
var testMod struct {
	once sync.Once
	m    *Module
	err  error
}

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	testMod.once.Do(func() {
		testMod.m, testMod.err = LoadModule(".")
	})
	if testMod.err != nil {
		t.Fatalf("LoadModule: %v", testMod.err)
	}
	return testMod.m
}

// fixtureConfig points every package group at the fixture packages, so
// the group wiring itself is under test.
func fixtureConfig(m *Module) Config {
	fix := m.Path + "/internal/lint/testdata"
	return Config{
		Deterministic: []string{fix + "/determfix"},
		Locking:       []string{fix + "/lockfix"},
		ExporterPkgs:  []string{m.Path + "/internal/telemetry"},
		EventTypes:    []string{m.Path + "/internal/telemetry.Event"},
		SpanPkgs:      []string{fix + "/spanfix"},
		SpanTracePkg:  m.Path + "/internal/spantrace",
		WatchdogPkg:   m.Path + "/internal/watchdog",
		BundlePkg:     m.Path + "/internal/bundle",
		CmdPkgs:       []string{fix + "/hygienefix"},
		CLIPkg:        m.Path + "/internal/cli",
	}
}

// TestFixtures runs each check over its fixture package — one package
// per check, each holding both violating and //lint:allow-suppressed
// cases — and compares the text report against the committed golden.
func TestFixtures(t *testing.T) {
	fixtures := []string{"determfix", "lockfix", "telemfix", "spanfix", "hygienefix", "directivefix", "triagefix"}
	m := loadTestModule(t)
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			pkgs, err := m.Load("./internal/lint/testdata/" + name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			diags := Run(m, pkgs, fixtureConfig(m))
			var buf bytes.Buffer
			if err := WriteReport(&buf, "text", diags, m.Root); err != nil {
				t.Fatalf("render: %v", err)
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestReasonlessSuppressionIsDiagnostic pins the directive policy: a
// suppression without a reason both fails to suppress and is itself
// reported.
func TestReasonlessSuppressionIsDiagnostic(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/directivefix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run(m, pkgs, fixtureConfig(m))
	var missingReason, unknown, bare bool
	for _, d := range diags {
		if d.Check != "directive" {
			continue
		}
		if d.Suppressed {
			t.Errorf("directive diagnostic must not be suppressible: %s", d)
		}
		switch {
		case strings.Contains(d.Message, "missing a reason"):
			missingReason = true
		case strings.Contains(d.Message, "unknown check"):
			unknown = true
		case strings.Contains(d.Message, "needs a check name"):
			bare = true
		}
	}
	if !missingReason || !unknown || !bare {
		t.Errorf("want all three directive diagnostics (missing reason %v, unknown check %v, bare %v)", missingReason, unknown, bare)
	}
}

// TestSuppressionRequiresMatchingCheck verifies a reasoned directive
// only suppresses its own check's findings.
func TestSuppressionRequiresMatchingCheck(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/determfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	cfg := fixtureConfig(m)
	diags := Run(m, pkgs, cfg)
	for _, d := range diags {
		if d.Suppressed && d.Check == "directive" {
			t.Errorf("directive findings must never be suppressed: %s", d)
		}
		if d.Suppressed && !strings.Contains(d.Reason, "fixture:") {
			t.Errorf("suppression picked up a foreign reason: %s", d)
		}
	}
	if got := Unsuppressed(diags); got == 0 {
		t.Fatal("determfix must keep unsuppressed findings")
	}
}

// TestFormats sanity-checks the non-text renderers over a real
// fixture run: the JSON form must parse and agree on counts, the
// markdown form must contain the table header.
func TestFormats(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/telemfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run(m, pkgs, fixtureConfig(m))

	var buf bytes.Buffer
	if err := WriteReport(&buf, "json", diags, m.Root); err != nil {
		t.Fatalf("json render: %v", err)
	}
	var parsed struct {
		Diagnostics  []struct{ Check, File, Message string } `json:"diagnostics"`
		Unsuppressed int                                     `json:"unsuppressed"`
		Suppressed   int                                     `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if len(parsed.Diagnostics) != len(diags) {
		t.Errorf("json diagnostics = %d, want %d", len(parsed.Diagnostics), len(diags))
	}
	if parsed.Unsuppressed != Unsuppressed(diags) {
		t.Errorf("json unsuppressed = %d, want %d", parsed.Unsuppressed, Unsuppressed(diags))
	}
	for _, d := range parsed.Diagnostics {
		if filepath.IsAbs(d.File) {
			t.Errorf("json file path not module-relative: %s", d.File)
		}
	}

	buf.Reset()
	if err := WriteReport(&buf, "markdown", diags, m.Root); err != nil {
		t.Fatalf("markdown render: %v", err)
	}
	if !strings.Contains(buf.String(), "| Location | Check | Finding | Status |") {
		t.Error("markdown output lacks the findings table")
	}

	if err := WriteReport(&buf, "yaml", diags, m.Root); err == nil {
		t.Error("unknown format must error")
	}
}

// TestChecksSubset verifies cfg.Checks narrows the run.
func TestChecksSubset(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/determfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	cfg := fixtureConfig(m)
	cfg.Checks = []string{"locking"}
	for _, d := range Run(m, pkgs, cfg) {
		if d.Check != "locking" && d.Check != "directive" {
			t.Errorf("check %q ran despite subset selection: %s", d.Check, d)
		}
	}
}
