package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestFixture -update
var update = flag.Bool("update", false, "rewrite golden files")

// The module is loaded once and shared: every fixture test and the
// self-lint test reuse the same parsed+type-checked dependency set.
var testMod struct {
	once sync.Once
	m    *Module
	err  error
}

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	testMod.once.Do(func() {
		testMod.m, testMod.err = LoadModule(".")
	})
	if testMod.err != nil {
		t.Fatalf("LoadModule: %v", testMod.err)
	}
	return testMod.m
}

// fixtureConfig points every package group at the fixture packages, so
// the group wiring itself is under test.
func fixtureConfig(m *Module) Config {
	fix := m.Path + "/internal/lint/testdata"
	return Config{
		Deterministic: []string{fix + "/determfix"},
		Locking:       []string{fix + "/lockfix"},
		ExporterPkgs:  []string{m.Path + "/internal/telemetry"},
		EventTypes:    []string{m.Path + "/internal/telemetry.Event"},
		SpanPkgs:      []string{fix + "/spanfix"},
		SpanTracePkg:  m.Path + "/internal/spantrace",
		WatchdogPkg:   m.Path + "/internal/watchdog",
		BundlePkg:     m.Path + "/internal/bundle",
		CmdPkgs:       []string{fix + "/hygienefix"},
		CLIPkg:        m.Path + "/internal/cli",
		Atomics:       []string{fix + "/atomicfix"},
		Ctxflow:       []string{fix + "/ctxfix"},
		Leaks:         []string{fix + "/leakfix"},
	}
}

// TestFixtures runs each check over its fixture package — one package
// per check, each holding both violating and //lint:allow-suppressed
// cases — and compares the text report against the committed golden.
func TestFixtures(t *testing.T) {
	fixtures := []string{"determfix", "lockfix", "atomicfix", "ctxfix", "leakfix", "telemfix", "spanfix", "hygienefix", "directivefix", "triagefix"}
	m := loadTestModule(t)
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			pkgs, err := m.Load("./internal/lint/testdata/" + name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			diags := Run(m, pkgs, fixtureConfig(m))
			var buf bytes.Buffer
			if err := WriteReport(&buf, "text", diags, m.Root); err != nil {
				t.Fatalf("render: %v", err)
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestReasonlessSuppressionIsDiagnostic pins the directive policy: a
// suppression without a reason both fails to suppress and is itself
// reported.
func TestReasonlessSuppressionIsDiagnostic(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/directivefix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run(m, pkgs, fixtureConfig(m))
	var missingReason, unknown, bare bool
	for _, d := range diags {
		if d.Check != "directive" {
			continue
		}
		if d.Suppressed {
			t.Errorf("directive diagnostic must not be suppressible: %s", d)
		}
		switch {
		case strings.Contains(d.Message, "missing a reason"):
			missingReason = true
		case strings.Contains(d.Message, "unknown check"):
			unknown = true
		case strings.Contains(d.Message, "needs a check name"):
			bare = true
		}
	}
	if !missingReason || !unknown || !bare {
		t.Errorf("want all three directive diagnostics (missing reason %v, unknown check %v, bare %v)", missingReason, unknown, bare)
	}
}

// TestSuppressionRequiresMatchingCheck verifies a reasoned directive
// only suppresses its own check's findings.
func TestSuppressionRequiresMatchingCheck(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/determfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	cfg := fixtureConfig(m)
	diags := Run(m, pkgs, cfg)
	for _, d := range diags {
		if d.Suppressed && d.Check == "directive" {
			t.Errorf("directive findings must never be suppressed: %s", d)
		}
		if d.Suppressed && !strings.Contains(d.Reason, "fixture:") {
			t.Errorf("suppression picked up a foreign reason: %s", d)
		}
	}
	if got := Unsuppressed(diags); got == 0 {
		t.Fatal("determfix must keep unsuppressed findings")
	}
}

// TestFormats sanity-checks the non-text renderers over a real
// fixture run: the JSON form must parse and agree on counts, the
// markdown form must contain the table header.
func TestFormats(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/telemfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run(m, pkgs, fixtureConfig(m))

	var buf bytes.Buffer
	if err := WriteReport(&buf, "json", diags, m.Root); err != nil {
		t.Fatalf("json render: %v", err)
	}
	var parsed struct {
		Diagnostics  []struct{ Check, File, Message string } `json:"diagnostics"`
		Unsuppressed int                                     `json:"unsuppressed"`
		Suppressed   int                                     `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if len(parsed.Diagnostics) != len(diags) {
		t.Errorf("json diagnostics = %d, want %d", len(parsed.Diagnostics), len(diags))
	}
	if parsed.Unsuppressed != Unsuppressed(diags) {
		t.Errorf("json unsuppressed = %d, want %d", parsed.Unsuppressed, Unsuppressed(diags))
	}
	for _, d := range parsed.Diagnostics {
		if filepath.IsAbs(d.File) {
			t.Errorf("json file path not module-relative: %s", d.File)
		}
	}

	buf.Reset()
	if err := WriteReport(&buf, "markdown", diags, m.Root); err != nil {
		t.Fatalf("markdown render: %v", err)
	}
	if !strings.Contains(buf.String(), "| Location | Check | Finding | Status |") {
		t.Error("markdown output lacks the findings table")
	}

	if err := WriteReport(&buf, "yaml", diags, m.Root); err == nil {
		t.Error("unknown format must error")
	}
}

// TestDeterministicOrdering pins the suite's output contract: the
// report is byte-identical no matter what order packages are handed to
// Run. The total diagnostic order (file, line, column, check, message)
// is what makes the SARIF artifact diffable in CI.
func TestDeterministicOrdering(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load(
		"./internal/lint/testdata/determfix",
		"./internal/lint/testdata/lockfix",
		"./internal/lint/testdata/ctxfix",
		"./internal/lint/testdata/leakfix",
	)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	render := func(pkgs []*Package) string {
		diags := Run(m, pkgs, fixtureConfig(m))
		var buf bytes.Buffer
		if err := WriteReport(&buf, "text", diags, m.Root); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.String()
	}
	want := render(pkgs)
	perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for _, perm := range perms {
		shuffled := make([]*Package, len(pkgs))
		for i, j := range perm {
			shuffled[i] = pkgs[j]
		}
		if got := render(shuffled); got != want {
			t.Errorf("report depends on package order %v:\n--- got ---\n%s--- want ---\n%s", perm, got, want)
		}
	}
}

// TestSARIF checks the SARIF 2.1.0 renderer: the document parses, the
// header fields are right, every result cites a cataloged rule and a
// module-relative URI, suppressed findings carry an inSource
// suppression with the directive's reason, and two renders of the same
// diagnostics are byte-identical.
func TestSARIF(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/ctxfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run(m, pkgs, fixtureConfig(m))

	var buf bytes.Buffer
	if err := WriteReport(&buf, "sarif", diags, m.Root); err != nil {
		t.Fatalf("sarif render: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("sarif output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one run of version 2.1.0, got version %q, %d run(s)", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "schedlint" {
		t.Errorf("driver name = %q, want schedlint", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("sarif results = %d, want %d", len(run.Results), len(diags))
	}
	suppressed := 0
	for i, r := range run.Results {
		if !rules[r.RuleID] {
			t.Errorf("result %d cites uncataloged rule %q", i, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if filepath.IsAbs(loc.ArtifactLocation.URI) || strings.Contains(loc.ArtifactLocation.URI, `\`) {
			t.Errorf("result %d URI not a relative forward-slash path: %q", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d has no start line", i)
		}
		if len(r.Suppressions) > 0 {
			suppressed++
			if r.Level != "note" {
				t.Errorf("suppressed result %d has level %q, want note", i, r.Level)
			}
			if r.Suppressions[0].Kind != "inSource" || r.Suppressions[0].Justification == "" {
				t.Errorf("suppressed result %d lacks a justified inSource suppression: %+v", i, r.Suppressions[0])
			}
		}
	}
	if want := len(diags) - Unsuppressed(diags); suppressed != want {
		t.Errorf("sarif suppressed results = %d, want %d", suppressed, want)
	}

	var again bytes.Buffer
	if err := WriteReport(&again, "sarif", diags, m.Root); err != nil {
		t.Fatalf("second sarif render: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("sarif renders of the same diagnostics differ")
	}
}

// TestUnusedAllows checks the suppression audit: the deliberately
// stale (well-formed, matching nothing) directive in directivefix is
// reported, directives for disabled checks are skipped, and a fixture
// whose directives all match findings audits clean.
func TestUnusedAllows(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/directivefix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	cfg := fixtureConfig(m)
	diags := Run(m, pkgs, cfg)

	unused := UnusedAllows(pkgs, diags, cfg)
	if len(unused) != 1 {
		t.Fatalf("unused allows = %d, want exactly the stale locking directive:\n%+v", len(unused), unused)
	}
	d := unused[0]
	if d.Check != "unused-allow" || !strings.Contains(d.Message, "lint:allow locking") {
		t.Errorf("unexpected audit diagnostic: %s", d)
	}
	if !strings.HasSuffix(d.Pos.Filename, "directivefix/bad.go") {
		t.Errorf("audit diagnostic in wrong file: %s", d.Pos.Filename)
	}

	// A subset run that disables locking cannot judge the directive.
	sub := cfg
	sub.Checks = []string{"determinism"}
	if got := UnusedAllows(pkgs, Run(m, pkgs, sub), sub); len(got) != 0 {
		t.Errorf("audit judged a directive for a disabled check: %+v", got)
	}

	// determfix's directives all suppress findings: audit is clean.
	dpkgs, err := m.Load("./internal/lint/testdata/determfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if got := UnusedAllows(dpkgs, Run(m, dpkgs, cfg), cfg); len(got) != 0 {
		t.Errorf("determfix's used directives reported as stale: %+v", got)
	}
}

// TestChecksSubset verifies cfg.Checks narrows the run.
func TestChecksSubset(t *testing.T) {
	m := loadTestModule(t)
	pkgs, err := m.Load("./internal/lint/testdata/determfix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	cfg := fixtureConfig(m)
	cfg.Checks = []string{"locking"}
	for _, d := range Run(m, pkgs, cfg) {
		if d.Check != "locking" && d.Check != "directive" {
			t.Errorf("check %q ran despite subset selection: %s", d.Check, d)
		}
	}
}
