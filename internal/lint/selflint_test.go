package lint

import "testing"

// TestSelfLint runs the full suite over the whole module with the
// default configuration, so `go test ./...` fails the moment the repo
// violates its own determinism, locking, telemetry or hygiene rules.
// Every surviving exception must carry a reasoned //lint:allow — those
// are logged here for auditability, never failed on.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	m := loadTestModule(t)
	pkgs, err := m.Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): pattern expansion is broken", len(pkgs))
	}
	cfg := DefaultConfig(m.Path)
	diags := Run(m, pkgs, cfg)
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			t.Logf("allowed: %s", d)
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	// The suppression inventory must be live: a directive whose finding
	// has been fixed grants a standing exemption to future regressions
	// at that site, so stale allows fail the build too.
	for _, d := range UnusedAllows(pkgs, diags, cfg) {
		t.Errorf("stale suppression: %s", d)
	}
	t.Logf("self-lint: %d package(s), %d reasoned exception(s)", len(pkgs), suppressed)
}
