package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockingCheck enforces the lock discipline of the real-runtime
// packages (core.Engine and internal/pool). The runtime's correctness
// argument — FIFO admission, per-submission isolation, panic
// containment — leans on three conventions:
//
//   - lock-bearing values are never copied (a copied sync.Mutex is a
//     new, unlocked mutex: the classic silent race);
//   - a mutex is never held across a channel operation or a Submit
//     call (both can block indefinitely, extending the critical
//     section into a deadlock under admission back-pressure);
//   - a function never returns with a mutex still held — multi-return
//     functions must use defer-unlock.
//
// The analysis is a may-held forward dataflow over the function's CFG:
// a mutex counts as held at a program point if ANY path reaches it
// with the lock taken, so early returns, gotos, labeled breaks, and
// branch-dependent unlocks are all caught (the old linear scan missed
// exactly those). Legitimate exceptions carry //lint:allow locking
// <reason>.
var lockingCheck = &Check{
	Name: "locking",
	Doc:  "forbid copied lock-bearing values, mutexes held across channel ops/Submit, and returns with a mutex held",
	Run:  runLocking,
}

func runLocking(p *Pass) {
	if !matchesAny(p.Pkg.Path, p.Cfg.Locking) {
		return
	}
	lc := &lockChecker{p: p, seen: map[types.Type]bool{}}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				lc.checkSignature(n)
				if n.Body != nil {
					lc.analyzeBody(n.Body)
				}
				return true
			case *ast.FuncLit:
				// A closure runs on its own schedule; its critical
				// sections get their own CFG and fresh lock state.
				lc.analyzeBody(n.Body)
				return true
			case *ast.RangeStmt:
				lc.checkRangeCopy(n)
			}
			return true
		})
	}
}

type lockChecker struct {
	p    *Pass
	seen map[types.Type]bool
}

// hasLock reports whether t contains a sync lock by value (Mutex,
// RWMutex, WaitGroup, Once, Cond), directly or through struct fields
// and array elements.
func (lc *lockChecker) hasLock(t types.Type) bool {
	if lc.seen[t] {
		return false // cycle: already being examined
	}
	lc.seen[t] = true
	defer delete(lc.seen, t)
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
		return lc.hasLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.hasLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lc.hasLock(u.Elem())
	}
	return false
}

// checkSignature flags receivers, parameters and results that copy a
// lock-bearing type by value.
func (lc *lockChecker) checkSignature(fn *ast.FuncDecl) {
	report := func(kind string, fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			tv, ok := lc.p.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lc.hasLock(tv.Type) {
				lc.p.Reportf(field.Pos(), "%s copies lock-bearing type %s by value (pass a pointer)", kind, tv.Type)
			}
		}
	}
	report("receiver", fn.Recv)
	report("parameter", fn.Type.Params)
	report("result", fn.Type.Results)
}

// checkRangeCopy flags `for _, v := range xs` where v copies a
// lock-bearing element (iterate by index instead).
func (lc *lockChecker) checkRangeCopy(n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	// A := range variable is a definition, recorded in Defs; an
	// assigned one is an expression, recorded in Types.
	var t types.Type
	if id, ok := n.Value.(*ast.Ident); ok {
		if obj := lc.p.Pkg.Info.Defs[id]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		if tv, ok := lc.p.Pkg.Info.Types[n.Value]; ok {
			t = tv.Type
		}
	}
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lc.hasLock(t) {
		lc.p.Reportf(n.Value.Pos(), "range value copies lock-bearing type %s by value (range over the index)", t)
	}
}

// lockBits is the per-mutex dataflow fact. A mutex expression may be
// held with its release still pending (lockHeld) or pinned to function
// exit by a defer (lockDeferred). A deferred release makes returns
// fine but blocking operations under the lock still are not.
type lockBits uint8

const (
	lockHeld lockBits = 1 << iota
	lockDeferred
)

// lockFact maps a mutex expression's printed form to its state on some
// path reaching this point. The analysis is a may-analysis: facts from
// different paths union, so "unlocked on one branch only" keeps the
// lock visible at the join — exactly the case a linear scan loses.
type lockFact map[string]lockBits

func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinLockFacts(a, b lockFact) lockFact {
	out := cloneLockFact(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalLockFacts(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// analyzeBody runs the may-held analysis over one function body and
// reports violations with the fixpoint facts.
func (lc *lockChecker) analyzeBody(body *ast.BlockStmt) {
	g := BuildCFG(body)
	an := forwardAnalysis[lockFact]{
		join:  joinLockFacts,
		equal: equalLockFacts,
		transfer: func(b *Block, in lockFact) lockFact {
			return lc.applyBlock(g, b, in, false)
		},
	}
	in := an.run(g, lockFact{})
	// Second pass with the converged in-facts, now reporting. Blocks
	// are visited in creation order, so diagnostics are deterministic;
	// unreachable blocks have no facts and are skipped.
	for _, b := range g.Blocks {
		fact, ok := in[b]
		if !ok {
			continue
		}
		lc.applyBlock(g, b, fact, true)
	}
}

// applyBlock pushes a lock fact through one block's nodes in order.
// With report set it also emits diagnostics at returns and blocking
// operations; the transfer logic is identical either way, so the
// fixpoint and the reporting pass can never disagree.
func (lc *lockChecker) applyBlock(g *CFG, b *Block, in lockFact, report bool) lockFact {
	fact := cloneLockFact(in)
	for _, n := range b.Nodes {
		if sc, ok := g.SelectComm[n]; ok {
			// The head of a select clause: the communication blocks
			// unless the select has a default arm.
			if report && !sc.HasDefault {
				lc.reportBlocking(fact, n.Pos(), "select communication")
			}
			continue
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if key, op, ok := lc.mutexOp(n.X); ok {
				switch op {
				case "Lock", "RLock":
					fact[key] = lockHeld
				case "Unlock", "RUnlock":
					delete(fact, key)
				}
				continue
			}
			if report {
				lc.scanBlocking(fact, n)
			}
		case *ast.DeferStmt:
			if key, op, ok := lc.mutexOp(n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if fact[key]&lockHeld != 0 {
					fact[key] = lockDeferred // release pinned to function exit
				}
			}
			// Other deferred calls run at exit outside any critical
			// section we can reason about; skip them.
		case *ast.GoStmt:
			// The spawned goroutine runs without our locks; its body
			// is analyzed separately via the FuncLit walk.
		case *ast.ReturnStmt:
			if report {
				for _, key := range sortedLockKeys(fact) {
					if fact[key]&lockHeld != 0 {
						lc.p.Reportf(n.Pos(), "may return while %s is held (unlock on every path, or defer the unlock)", key)
					}
				}
				lc.scanBlocking(fact, n)
			}
		default:
			if report {
				lc.scanBlocking(fact, n)
			}
		}
	}
	return fact
}

// mutexOp recognises a call of sync's Lock/RLock/Unlock/RUnlock on a
// mutex-valued expression, returning the receiver's printed form.
func (lc *lockChecker) mutexOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := lc.p.objectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// scanBlocking flags channel operations and Submit calls inside one
// block node while any mutex may be held.
func (lc *lockChecker) scanBlocking(fact lockFact, n ast.Node) {
	if len(fact) == 0 {
		return
	}
	inspectShallow(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.SendStmt:
			lc.reportBlocking(fact, c.Pos(), "channel send")
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				lc.reportBlocking(fact, c.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Submit" {
				lc.reportBlocking(fact, c.Pos(), "Submit call")
			}
		}
		return true
	})
}

func (lc *lockChecker) reportBlocking(fact lockFact, pos token.Pos, what string) {
	keys := sortedLockKeys(fact)
	if len(keys) == 0 {
		return
	}
	lc.p.Reportf(pos, "%s while %s is held (blocking operations must not extend a critical section)", what, keys[0])
}

// sortedLockKeys returns the fact's mutexes in deterministic order.
func sortedLockKeys(fact lockFact) []string {
	keys := make([]string, 0, len(fact))
	for k := range fact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
