package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockingCheck enforces the lock discipline of the real-runtime
// packages (core.Engine and internal/pool). The runtime's correctness
// argument — FIFO admission, per-submission isolation, panic
// containment — leans on three conventions:
//
//   - lock-bearing values are never copied (a copied sync.Mutex is a
//     new, unlocked mutex: the classic silent race);
//   - a mutex is never held across a channel operation or a Submit
//     call (both can block indefinitely, extending the critical
//     section into a deadlock under admission back-pressure);
//   - a function never returns with a mutex still held — multi-return
//     functions must use defer-unlock.
//
// The analysis is a conservative source-order scan, not a full CFG;
// legitimate exceptions carry //lint:allow locking <reason>.
var lockingCheck = &Check{
	Name: "locking",
	Doc:  "forbid copied lock-bearing values, mutexes held across channel ops/Submit, and returns with a mutex held",
	Run:  runLocking,
}

func runLocking(p *Pass) {
	if !matchesAny(p.Pkg.Path, p.Cfg.Locking) {
		return
	}
	lc := &lockChecker{p: p, seen: map[types.Type]bool{}}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				lc.checkSignature(n)
				if n.Body != nil {
					lc.scanBody(n.Body)
				}
				return true
			case *ast.FuncLit:
				// A closure runs on its own schedule; its critical
				// sections are scanned with fresh state.
				lc.scanBody(n.Body)
				return true
			case *ast.RangeStmt:
				lc.checkRangeCopy(n)
			}
			return true
		})
	}
}

type lockChecker struct {
	p    *Pass
	seen map[types.Type]bool
}

// hasLock reports whether t contains a sync lock by value (Mutex,
// RWMutex, WaitGroup, Once, Cond), directly or through struct fields
// and array elements.
func (lc *lockChecker) hasLock(t types.Type) bool {
	if lc.seen[t] {
		return false // cycle: already being examined
	}
	lc.seen[t] = true
	defer delete(lc.seen, t)
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
		return lc.hasLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.hasLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lc.hasLock(u.Elem())
	}
	return false
}

// checkSignature flags receivers, parameters and results that copy a
// lock-bearing type by value.
func (lc *lockChecker) checkSignature(fn *ast.FuncDecl) {
	report := func(kind string, fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			tv, ok := lc.p.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lc.hasLock(tv.Type) {
				lc.p.Reportf(field.Pos(), "%s copies lock-bearing type %s by value (pass a pointer)", kind, tv.Type)
			}
		}
	}
	report("receiver", fn.Recv)
	report("parameter", fn.Type.Params)
	report("result", fn.Type.Results)
}

// checkRangeCopy flags `for _, v := range xs` where v copies a
// lock-bearing element (iterate by index instead).
func (lc *lockChecker) checkRangeCopy(n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	// A := range variable is a definition, recorded in Defs; an
	// assigned one is an expression, recorded in Types.
	var t types.Type
	if id, ok := n.Value.(*ast.Ident); ok {
		if obj := lc.p.Pkg.Info.Defs[id]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		if tv, ok := lc.p.Pkg.Info.Types[n.Value]; ok {
			t = tv.Type
		}
	}
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lc.hasLock(t) {
		lc.p.Reportf(n.Value.Pos(), "range value copies lock-bearing type %s by value (range over the index)", t)
	}
}

// scanBody runs the critical-section scanner over one function body
// with fresh lock state.
func (lc *lockChecker) scanBody(body *ast.BlockStmt) {
	s := &lockScan{lc: lc, held: map[string]bool{}}
	s.stmts(body.List)
}

// lockScan tracks which mutexes are held during a source-order walk of
// one function body. held maps a mutex expression (printed form) to
// whether its release is deferred; a deferred release keeps the mutex
// held to function exit by design, so returns are fine but blocking
// operations under it still are not.
type lockScan struct {
	lc   *lockChecker
	held map[string]bool
}

func (s *lockScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if key, op, ok := s.mutexOp(st.X); ok {
			switch op {
			case "Lock", "RLock":
				s.held[key] = false
			case "Unlock", "RUnlock":
				delete(s.held, key)
			}
			return
		}
		s.checkBlocking(st)
	case *ast.DeferStmt:
		if key, op, ok := s.mutexOp(st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			if _, locked := s.held[key]; locked {
				s.held[key] = true // release pinned to function exit
			}
			return
		}
	case *ast.ReturnStmt:
		for _, key := range s.heldKeys() {
			if !s.held[key] { // non-deferred
				s.lc.p.Reportf(st.Pos(), "return while %s is held (unlock first, or defer the unlock)", key)
			}
		}
		s.checkBlocking(st)
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.IfStmt:
		s.checkBlockingNode(st.Init)
		s.checkBlockingNode(st.Cond)
		s.stmt(st.Body)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		s.checkBlockingNode(st.Cond)
		s.stmt(st.Body)
	case *ast.RangeStmt:
		s.checkBlockingNode(st.X)
		s.stmt(st.Body)
	case *ast.SwitchStmt:
		s.checkBlockingNode(st.Tag)
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		if len(s.held) > 0 {
			s.reportBlocking(st.Pos(), "select")
		}
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.GoStmt:
		// The spawned goroutine runs without our locks; its body is
		// scanned separately via the FuncLit walk.
	default:
		s.checkBlocking(st)
	}
}

// mutexOp recognises a call of sync's Lock/RLock/Unlock/RUnlock on a
// mutex-valued expression, returning the receiver's printed form.
func (s *lockScan) mutexOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := s.lc.p.objectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// checkBlocking flags channel operations and Submit calls inside st
// while any mutex is held.
func (s *lockScan) checkBlocking(st ast.Stmt) {
	if len(s.held) == 0 {
		return
	}
	s.checkBlockingNode(st)
}

func (s *lockScan) checkBlockingNode(n ast.Node) {
	if n == nil || len(s.held) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // runs later, without our locks
		case *ast.SendStmt:
			s.reportBlocking(c.Pos(), "channel send")
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				s.reportBlocking(c.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Submit" {
				s.reportBlocking(c.Pos(), "Submit call")
			}
		}
		return true
	})
}

func (s *lockScan) reportBlocking(pos token.Pos, what string) {
	keys := s.heldKeys()
	s.lc.p.Reportf(pos, "%s while %s is held (blocking operations must not extend a critical section)", what, keys[0])
}

// heldKeys returns the held mutexes in deterministic order.
func (s *lockScan) heldKeys() []string {
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
