package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// atomicsCheck enforces a single access discipline per field: once any
// code in the module updates a struct field (or package-level
// variable) through sync/atomic, every other access must go through
// sync/atomic too. Mixed atomic/plain access is a data race the race
// detector only catches when the interleaving happens to occur — and
// it is exactly the bug class the planned lock-free rewrite of the hot
// paths (ROADMAP item 4, Chase–Lev deques) would mass-produce.
//
// The index of atomically-accessed variables is module-wide: a field
// updated atomically in internal/core is protected against plain
// writes from any package. Two deliberate refinements keep the signal
// clean:
//
//   - plain WRITES and address escapes are flagged everywhere, but
//     plain READS only in packages that themselves perform atomic
//     accesses of the field — a read elsewhere is presumed to see a
//     post-barrier by-value snapshot (core.Stats results copied out
//     after a run), which a reasoned //lint:allow documents when the
//     presumption is load-bearing;
//   - element accesses through an index expression
//     (atomic.AddInt64(&stats.LocalOps[w], 1)) are not indexed: the
//     discipline there is per-element, beyond a whole-variable check.
//
// Accesses whose selector-chain base is a local variable of non-
// pointer type — a value receiver, a value parameter, a local struct
// accumulator — are exempt: the struct there is a private copy, and a
// copy cannot race with the shared instance (the copying assignment
// itself is the reader's responsibility; the module copies Stats out
// only after the run's barrier). Shared state in this module is always
// reached through a pointer, so the hot paths stay fully covered.
//
// Constructor paths are exempt: functions named init or New*/new* own
// their value exclusively before it is published, as do composite
// literal keys.
var atomicsCheck = &Check{
	Name: "atomics",
	Doc:  "forbid plain access to fields that are elsewhere accessed via sync/atomic (mixed access races)",
	Run:  runAtomics,
}

func runAtomics(p *Pass) {
	if !matchesAny(p.Pkg.Path, p.Cfg.Atomics) {
		return
	}
	idx := p.Mod.atomicVarIndex()
	if len(idx) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		sanctioned := atomicOperands(p.Pkg.Info, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			v := plainVarOf(p.Pkg.Info, e)
			if v == nil {
				return true
			}
			use, tracked := idx[v]
			if !tracked || sanctioned[n] {
				return true
			}
			if skipAtomicAccess(e, stack) || throughLocalCopy(p.Pkg.Info, e) {
				return true
			}
			site := fmt.Sprintf("%s:%d", filepath.Base(use.pos.Filename), use.pos.Line)
			switch classifyAccess(n, stack) {
			case accessWrite:
				p.Reportf(n.Pos(), "%s is accessed via sync/atomic (e.g. %s) but written plainly here (use the atomic API on every access outside init paths)", v.Name(), site)
			case accessAddr:
				p.Reportf(n.Pos(), "%s is accessed via sync/atomic (e.g. %s) but its address escapes outside sync/atomic here", v.Name(), site)
			case accessRead:
				if use.pkgs[p.Pkg.Path] {
					p.Reportf(n.Pos(), "%s is accessed via sync/atomic (e.g. %s) but read plainly here (use an atomic load, or annotate the post-barrier snapshot)", v.Name(), site)
				}
			}
			return true
		})
	}
}

type accessKind int

const (
	accessRead accessKind = iota
	accessWrite
	accessAddr
)

// classifyAccess decides what the enclosing context does with the
// variable: assignment target, increment, address-taken, or read.
func classifyAccess(n ast.Node, stack []ast.Node) accessKind {
	if len(stack) == 0 {
		return accessRead
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == n {
				return accessWrite
			}
		}
	case *ast.IncDecStmt:
		if parent.X == n {
			return accessWrite
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND && parent.X == n {
			return accessAddr
		}
	}
	return accessRead
}

// skipAtomicAccess filters node shapes that are not accesses at all:
// the Sel half of a parent selector (the parent carries the access),
// composite-literal keys (naming the field, owned pre-publication),
// and anything inside an init-path function.
func skipAtomicAccess(e ast.Expr, stack []ast.Node) bool {
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if parent.Sel == e {
				return true
			}
		case *ast.KeyValueExpr:
			if parent.Key == e {
				return true
			}
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			name := fd.Name.Name
			if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
				return true
			}
			break
		}
	}
	return false
}

// throughLocalCopy reports whether a selector access bottoms out in a
// local variable through value hops only: the struct is then a private
// by-value copy, which cannot race with the shared instance. Any
// reference hop on the way — a pointer, slice, map, or interface —
// reaches shared memory and voids the exemption.
func throughLocalCopy(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := ast.Unparen(sel.X)
	for {
		if !isValueHop(info, base) {
			return false
		}
		switch b := base.(type) {
		case *ast.SelectorExpr:
			base = ast.Unparen(b.X)
			continue
		case *ast.IndexExpr:
			base = ast.Unparen(b.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	return true
}

// isValueHop reports whether an expression in a selector chain has a
// value type (struct or array), so traversing it stays inside the
// copy.
func isValueHop(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

// plainVarOf resolves a selector or identifier to the struct field or
// package-level variable it denotes, or nil.
func plainVarOf(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[e.Sel]
		}
	case *ast.Ident:
		// Uses only: a Defs hit would be the declaration itself (a
		// struct field's name, a var spec), which is not an access.
		obj = info.Uses[e]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v // package-level variable
	}
	return nil
}

// atomicOperands collects the operand nodes of sync/atomic calls in
// one file: the `x.f` inside atomic.AddInt64(&x.f, 1). These are the
// sanctioned accesses the plain-access scan must not flag.
func atomicOperands(info *types.Info, f *ast.File) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if target := atomicCallOperand(info, n); target != nil {
			out[target] = true
		}
		return true
	})
	return out
}

// atomicCallOperand returns the &-operand expression of a sync/atomic
// function call, or nil. Method calls (atomic.Int64 etc.) are excluded
// — the typed atomics make mixed access impossible by construction.
// Index-expression operands are excluded per the package comment.
func atomicCallOperand(info *types.Info, n ast.Node) ast.Expr {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	target := ast.Unparen(addr.X)
	if _, isIndex := target.(*ast.IndexExpr); isIndex {
		return nil
	}
	return target
}

// inspectStack is ast.Inspect with an ancestor stack: fn receives each
// node together with the path from the root (nearest ancestor last).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// atomicUse records where a variable's atomic discipline was
// established: the first atomic call site (for the diagnostic) and the
// set of packages performing atomic accesses (the read-locality rule).
type atomicUse struct {
	pos  token.Position
	pkgs map[string]bool
}

// atomicVarIndex returns the module-wide map of variables accessed
// through sync/atomic, rebuilding lazily when more packages have been
// loaded since the last build (the same pattern as the deprecated-API
// index). Iteration over sorted Packages keeps the recorded first-site
// deterministic.
func (m *Module) atomicVarIndex() map[*types.Var]*atomicUse {
	if m.atomicIdx != nil && m.atomicIdxAt == len(m.pkgs) {
		return m.atomicIdx
	}
	idx := map[*types.Var]*atomicUse{}
	for _, pkg := range m.Packages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				target := atomicCallOperand(pkg.Info, n)
				if target == nil {
					return true
				}
				v := plainVarOf(pkg.Info, target)
				if v == nil {
					return true
				}
				use := idx[v]
				if use == nil {
					use = &atomicUse{pos: m.Fset.Position(target.Pos()), pkgs: map[string]bool{}}
					idx[v] = use
				}
				use.pkgs[pkg.Path] = true
				return true
			})
		}
	}
	m.atomicIdx = idx
	m.atomicIdxAt = len(m.pkgs)
	return idx
}
