package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position
	check  string // named check; "" when the directive is malformed
	reason string // "" when missing — itself a diagnostic
}

const directivePrefix = "lint:allow"

// parseDirectives extracts every //lint:allow directive from the
// files' comments. Both placements count: trailing on the offending
// line, or alone on the line immediately above it.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				d := directive{pos: fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.check = fields[0]
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveDiagnostics reports malformed directives: a missing reason
// (suppression must say why, or audits cannot tell a reviewed
// exception from a silenced bug) and names that match no check. These
// diagnostics are not themselves suppressible.
func directiveDiagnostics(m *Module, pkg *Package) []Diagnostic {
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var out []Diagnostic
	for _, d := range pkg.directives {
		switch {
		case d.check == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow needs a check name and a reason: //lint:allow <check> <reason>"})
		case !known[d.check]:
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow names unknown check " + strconvQuote(d.check)})
		case d.reason == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow " + d.check + " is missing a reason (suppressions must say why)"})
		}
	}
	return out
}

// applySuppressions marks diagnostics matched by a well-formed
// directive in the same file on the same line or the line above.
func applySuppressions(m *Module, pkgs []*Package, diags []Diagnostic) {
	// file -> line -> check -> reason
	index := map[string]map[int]map[string]string{}
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			if d.check == "" || d.reason == "" {
				continue // malformed directives suppress nothing
			}
			lines, ok := index[d.pos.Filename]
			if !ok {
				lines = map[int]map[string]string{}
				index[d.pos.Filename] = lines
			}
			checks, ok := lines[d.pos.Line]
			if !ok {
				checks = map[string]string{}
				lines[d.pos.Line] = checks
			}
			checks[d.check] = d.reason
		}
	}
	for i := range diags {
		d := &diags[i]
		if d.Check == "directive" {
			continue
		}
		lines, ok := index[d.Pos.Filename]
		if !ok {
			continue
		}
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			if reason, ok := lines[line][d.Check]; ok {
				d.Suppressed = true
				d.Reason = reason
				break
			}
		}
	}
}

// strconvQuote avoids importing strconv just for %q on a short name.
func strconvQuote(s string) string { return `"` + s + `"` }
