package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position
	check  string // named check; "" when the directive is malformed
	reason string // "" when missing — itself a diagnostic
}

const directivePrefix = "lint:allow"

// parseDirectives extracts every //lint:allow directive from the
// files' comments. Both placements count: trailing on the offending
// line, or alone on the line immediately above it.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				d := directive{pos: fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.check = fields[0]
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveDiagnostics reports malformed directives: a missing reason
// (suppression must say why, or audits cannot tell a reviewed
// exception from a silenced bug) and names that match no check. These
// diagnostics are not themselves suppressible.
func directiveDiagnostics(m *Module, pkg *Package) []Diagnostic {
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var out []Diagnostic
	for _, d := range pkg.directives {
		switch {
		case d.check == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow needs a check name and a reason: //lint:allow <check> <reason>"})
		case !known[d.check]:
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow names unknown check " + strconvQuote(d.check)})
		case d.reason == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "lint:allow " + d.check + " is missing a reason (suppressions must say why)"})
		}
	}
	return out
}

// applySuppressions marks diagnostics matched by a well-formed
// directive in the same file on the same line or the line above.
func applySuppressions(m *Module, pkgs []*Package, diags []Diagnostic) {
	// file -> line -> check -> reason
	index := map[string]map[int]map[string]string{}
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			if d.check == "" || d.reason == "" {
				continue // malformed directives suppress nothing
			}
			lines, ok := index[d.pos.Filename]
			if !ok {
				lines = map[int]map[string]string{}
				index[d.pos.Filename] = lines
			}
			checks, ok := lines[d.pos.Line]
			if !ok {
				checks = map[string]string{}
				lines[d.pos.Line] = checks
			}
			checks[d.check] = d.reason
		}
	}
	for i := range diags {
		d := &diags[i]
		if d.Check == "directive" {
			continue
		}
		lines, ok := index[d.Pos.Filename]
		if !ok {
			continue
		}
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			if reason, ok := lines[line][d.Check]; ok {
				d.Suppressed = true
				d.Reason = reason
				break
			}
		}
	}
}

// UnusedAllows audits the suppression inventory: it returns one
// diagnostic per well-formed //lint:allow directive that matched no
// finding in this run. Stale allows are worse than noise — they grant
// a standing exemption at a site whose violation has since been fixed
// (or was never diagnosable), so the next regression there is silently
// pre-forgiven. Directives naming a check that is disabled in cfg are
// skipped: a partial run cannot tell unused from not-evaluated.
//
// diags must be the full output of Run over the same pkgs (suppressed
// findings included), since a directive is "used" exactly when some
// suppressed diagnostic cites its file, check, and line (the finding
// sits on the directive's line or the line below, mirroring
// applySuppressions).
func UnusedAllows(pkgs []*Package, diags []Diagnostic, cfg Config) []Diagnostic {
	// file -> line -> check used
	used := map[string]map[int]map[string]bool{}
	mark := func(file string, line int, check string) {
		lines, ok := used[file]
		if !ok {
			lines = map[int]map[string]bool{}
			used[file] = lines
		}
		checks, ok := lines[line]
		if !ok {
			checks = map[string]bool{}
			lines[line] = checks
		}
		checks[check] = true
	}
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		// The matching directive sat on the finding's line or the line
		// above; credit both candidate positions.
		mark(d.Pos.Filename, d.Pos.Line, d.Check)
		mark(d.Pos.Filename, d.Pos.Line-1, d.Check)
	}
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			if d.check == "" || d.reason == "" || !known[d.check] {
				continue // malformed: directiveDiagnostics already reports it
			}
			if !cfg.enabled(d.check) {
				continue
			}
			if used[d.pos.Filename][d.pos.Line][d.check] {
				continue
			}
			out = append(out, Diagnostic{Check: "unused-allow", Pos: d.pos,
				Message: "lint:allow " + d.check + " suppresses no finding (stale directive; delete it)"})
		}
	}
	sortDiagnostics(out)
	return out
}

// strconvQuote avoids importing strconv just for %q on a short name.
func strconvQuote(s string) string { return `"` + s + `"` }
