package lint

import (
	"go/ast"
	"go/types"
)

// leaksCheck enforces goroutine-lifecycle hygiene in the long-running
// service packages (internal/serve, internal/pool, internal/watchdog,
// internal/livemetrics, internal/core): every `go` statement must have
// a provable shutdown edge, so that Close() really drains the process
// instead of stranding workers.
//
// The proof obligation is structural, on the spawned body's CFG: some
// path from entry must reach exit. A dispatcher that ranges over a
// closable channel, a sampler whose select has a stop-channel or
// ctx.Done() arm that returns, and a bounded helper that simply runs
// to completion all satisfy it; a `for {}` service loop with no
// escape, which no WaitGroup.Wait can ever collect, does not. Bodies
// the analyzer cannot see — a goroutine spawned on an interface method
// or a cross-package function — are flagged too, and carry a reasoned
// //lint:allow leaks stating the drain contract.
//
// The check is deliberately about termination, not about who waits:
// WaitGroup pairing makes Close block until the exit happens, but only
// a reachable exit makes that wait finite. Pair both (the engine's
// workers do) and shutdown is airtight.
var leaksCheck = &Check{
	Name: "leaks",
	Doc:  "require every go statement in the service packages to have a provable shutdown edge (a CFG path to exit)",
	Run:  runLeaks,
}

func runLeaks(p *Pass) {
	if !matchesAny(p.Pkg.Path, p.Cfg.Leaks) {
		return
	}
	decls := packageFuncDecls(p.Pkg)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, desc := goBody(p, decls, gs)
			if body == nil {
				p.Reportf(gs.Pos(), "goroutine body (%s) is outside this analysis: cannot prove a shutdown edge (annotate with the drain contract)", desc)
				return true
			}
			g := BuildCFG(body)
			if !g.reachable()[g.Exit] {
				p.Reportf(gs.Pos(), "goroutine has no shutdown edge: no path from its loop to exit (add a stop-channel/ctx.Done() arm that returns, range over a channel closed on shutdown, or bound the loop)")
			}
			return true
		})
	}
}

// packageFuncDecls maps each function object declared in the package
// to its syntax, so goroutines spawned on named functions and methods
// can be analyzed through the call.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// goBody resolves the body a go statement will run: a function
// literal's own body, or the declaration of a same-package function or
// method. The second return describes the callee when no body is
// available.
func goBody(p *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		if fn, ok := p.objectOf(fun).(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body, ""
			}
			return nil, fn.FullName()
		}
	case *ast.SelectorExpr:
		if fn, ok := p.objectOf(fun.Sel).(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body, ""
			}
			return nil, fn.FullName()
		}
	}
	return nil, "dynamic call"
}
