package lint

import (
	"go/ast"
	"go/types"
)

// determinismCheck enforces replayability in the simulator-facing
// packages. The reproduction's gate cases (BENCH_*) assume that the
// same machine, program and scheduler produce bit-identical schedules
// and costs on every run; the rules below ban the four ways Go code
// silently breaks that:
//
//   - reading the host clock (time.Now, time.Since) — the simulator
//     has its own cycle clock, and the real runtime (WallClock group)
//     must annotate every deliberate host-clock read;
//   - global math/rand functions — their stream is process-global and
//     unseeded; deterministic code must thread a seeded *rand.Rand;
//   - iterating a map — Go randomises map order per run, so any
//     schedule or cost decision fed by one diverges between replays;
//   - spawning goroutines — the simulator is single-threaded by
//     design; host scheduling order must not influence results.
var determinismCheck = &Check{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, map iteration and goroutine spawns in replay-sensitive packages",
	Run:  runDeterminism,
}

// randConstructors are the math/rand functions that build seeded
// generators rather than touching the global stream.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(p *Pass) {
	full := matchesAny(p.Pkg.Path, p.Cfg.Deterministic)
	wallOnly := matchesAny(p.Pkg.Path, p.Cfg.WallClock)
	if !full && !wallOnly {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := p.objectOf(n).(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if name := fn.Name(); name == "Now" || name == "Since" {
						p.Reportf(n.Pos(), "wall-clock read time.%s: replay-sensitive code must use the substrate clock", name)
					}
				case "math/rand", "math/rand/v2":
					if !full {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					if sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
						p.Reportf(n.Pos(), "global math/rand.%s draws from the process-wide stream: thread a seeded *rand.Rand instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if !full {
					return true
				}
				if tv, ok := p.Pkg.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "map iteration order is nondeterministic and must not feed scheduling or cost decisions")
					}
				}
			case *ast.GoStmt:
				if full {
					p.Reportf(n.Pos(), "goroutine spawned in a deterministic package: host scheduling order must not influence results")
				}
			}
			return true
		})
	}
}
