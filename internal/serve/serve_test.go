package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/livemetrics"
	"repro/internal/promtext"
)

// fakeClock is a manually advanced admission clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// tinySpec is a job small enough that a full pipeline round-trip costs
// microseconds.
func tinySpec(tenant string) job.Spec {
	return job.Spec{
		Kernel: "spin",
		Params: job.Params{N: 64, Phases: 1, Work: 1},
		Procs:  2,
		Tenant: tenant,
	}
}

// TestWFQProportionalShare pins the SFQ invariant the fairness gate
// relies on: with both tenants fully backlogged, dispatch slots split
// in proportion to weight regardless of arrival order or volume.
func TestWFQProportionalShare(t *testing.T) {
	q := newWFQ(1000)
	now := time.Unix(0, 0)
	for i := 0; i < 90; i++ {
		if !q.push(&submission{tenant: "a"}, 1, now) {
			t.Fatal("push a refused")
		}
	}
	for i := 0; i < 90; i++ {
		if !q.push(&submission{tenant: "b"}, 2, now) {
			t.Fatal("push b refused")
		}
	}
	counts := map[string]int{}
	for i := 0; i < 60; i++ {
		counts[q.pop().e.tenant]++
	}
	// Weight 2 vs 1: b should take two slots for every one of a's.
	if counts["a"] < 19 || counts["a"] > 21 || counts["b"] < 39 || counts["b"] > 41 {
		t.Fatalf("60 dispatches split a=%d b=%d, want ~20/~40", counts["a"], counts["b"])
	}

	// A tenant arriving mid-stream starts at the current virtual time —
	// it competes fairly from now on, with no credit for its idle past.
	for i := 0; i < 30; i++ {
		q.push(&submission{tenant: "c"}, 1, now)
	}
	counts = map[string]int{}
	for i := 0; i < 40; i++ {
		counts[q.pop().e.tenant]++
	}
	if counts["c"] == 0 || counts["c"] > 15 {
		t.Fatalf("late tenant got %d of 40 slots (a=%d b=%d)", counts["c"], counts["a"], counts["b"])
	}
}

func TestWFQBoundedDepth(t *testing.T) {
	q := newWFQ(3)
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		if !q.push(&submission{tenant: "a"}, 1, now) {
			t.Fatalf("push %d refused under the bound", i)
		}
	}
	if q.push(&submission{tenant: "a"}, 1, now) {
		t.Fatal("push beyond the depth bound accepted")
	}
	if q.depth() != 3 {
		t.Fatalf("depth = %d, want 3", q.depth())
	}
}

// TestQuotaShedDeterministic drives the token bucket with a fake
// clock: a 10 jobs/sec tenant admits exactly its burst, sheds with the
// refill interval as Retry-After, and recovers once the clock
// advances.
func TestQuotaShedDeterministic(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s, err := New(Options{
		Procs: 2,
		Tenants: map[string]TenantConfig{
			"metered": {Rate: 10, Burst: 1},
		},
		Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := tinySpec("metered")
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("burst submission refused: %v", err)
	}
	_, err = s.Submit(context.Background(), spec)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-quota submission returned %v, want *ShedError", err)
	}
	if shed.Reason != "quota" || shed.Tenant != "metered" {
		t.Fatalf("shed = %+v", shed)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms] at 10 jobs/sec", shed.RetryAfter)
	}
	if got := HTTPStatus(err); got != 429 {
		t.Fatalf("shed classifies as %d, want 429", got)
	}

	clock.advance(100 * time.Millisecond)
	if _, err := s.Submit(context.Background(), spec); err != nil {
		t.Fatalf("submission after refill refused: %v", err)
	}
}

// TestOverloadFavoredTenantUnharmed is the acceptance property in
// deterministic form: one tenant submits at 4× its quota while the
// other stays inside its own; every excess job sheds as 429 material
// and the favored tenant's goodput is untouched (100% of fair share).
func TestOverloadFavoredTenantUnharmed(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	plane := livemetrics.New(livemetrics.Options{})
	defer plane.Close()
	s, err := New(Options{
		Procs: 2,
		Tenants: map[string]TenantConfig{
			"steady":     {Rate: 100, Burst: 1},
			"aggressive": {Rate: 100, Burst: 1},
		},
		Plane: plane,
		Now:   clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const rounds = 25
	var steadyOK, aggOK, aggShed int
	for i := 0; i < rounds; i++ {
		clock.advance(10 * time.Millisecond) // exactly one token per tenant per round
		if _, err := s.Submit(context.Background(), tinySpec("steady")); err != nil {
			t.Fatalf("round %d: steady tenant refused: %v", i, err)
		}
		steadyOK++
		for j := 0; j < 4; j++ { // 4× the sustainable rate
			_, err := s.Submit(context.Background(), tinySpec("aggressive"))
			switch {
			case err == nil:
				aggOK++
			case HTTPStatus(err) == 429:
				aggShed++
			default:
				t.Fatalf("round %d: unexpected error %v", i, err)
			}
		}
	}
	if steadyOK != rounds {
		t.Fatalf("steady goodput %d/%d", steadyOK, rounds)
	}
	if aggOK != rounds || aggShed != 3*rounds {
		t.Fatalf("aggressive tenant: %d admitted %d shed, want %d/%d", aggOK, aggShed, rounds, 3*rounds)
	}

	// The plane's per-tenant series carry the same story for the CI
	// smoke test's prom scrape.
	var buf bytes.Buffer
	if err := livemetrics.WriteProm(&buf, plane.Snapshot()); err != nil {
		t.Fatal(err)
	}
	exp, err := promtext.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := exp.Value("loopsched_tenant_shed_total", "tenant", "aggressive"); v != float64(3*rounds) {
		t.Fatalf("aggressive shed series = %v, want %d", v, 3*rounds)
	}
	if v, _ := exp.Value("loopsched_tenant_completed_total", "tenant", "steady"); v != float64(rounds) {
		t.Fatalf("steady completed series = %v, want %d", v, rounds)
	}
}

// TestShardReuse pins the fleet-wide affinity contract: jobs sharing
// scheduler×procs land on one persistent executor (its AFS ownership
// state survives between them), and a different procs count forks a
// new shard.
func TestShardReuse(t *testing.T) {
	s, err := New(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), tinySpec("")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	other := tinySpec("")
	other.Procs = 1
	if _, err := s.Submit(context.Background(), other); err != nil {
		t.Fatal(err)
	}

	st := s.Status()
	if len(st.Shards) != 2 {
		t.Fatalf("shards = %+v, want 2 (AFS×2 reused, AFS×1 forked)", st.Shards)
	}
	byName := map[string]ShardStatus{}
	for _, sh := range st.Shards {
		byName[sh.Shard] = sh
	}
	if sh := byName["AFS×2"]; sh.Submissions != 3 {
		t.Fatalf("AFS×2 shard = %+v, want 3 submissions", sh)
	}
	if sh := byName["AFS×1"]; sh.Submissions != 1 {
		t.Fatalf("AFS×1 shard = %+v, want 1 submission", sh)
	}
	if st.Dispatched != 4 {
		t.Fatalf("dispatched = %d, want 4", st.Dispatched)
	}
}

func TestRejectInvalidSpec(t *testing.T) {
	s, err := New(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cases := []job.Spec{
		{},                         // no kernel
		{Kernel: "no-such-kernel"}, // unknown kernel
		{Kernel: "spin", Scheduler: "no-such-sched"},
	}
	for _, spec := range cases {
		_, err := s.Submit(context.Background(), spec)
		var rej *RejectError
		if !errors.As(err, &rej) {
			t.Errorf("spec %+v: err = %v, want *RejectError", spec, err)
			continue
		}
		if got := HTTPStatus(err); got != 400 {
			t.Errorf("spec %+v classifies as %d, want 400", spec, got)
		}
	}
}

func TestCloseDrains(t *testing.T) {
	s, err := New(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), tinySpec("")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(context.Background(), tinySpec(""))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if got := HTTPStatus(err); got != 503 {
		t.Fatalf("ErrClosed classifies as %d, want 503", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close not idempotent:", err)
	}
}

// TestHTTPEndToEnd exercises the wire contract: a successful job
// round-trip with a reproducible checksum, 429 + Retry-After on shed,
// 400 on an invalid spec, and the introspection endpoints.
func TestHTTPEndToEnd(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s, err := New(Options{
		Procs: 2,
		Tenants: map[string]TenantConfig{
			"metered": {Rate: 1, Burst: 1},
		},
		Now: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, "test"))
	defer ts.Close()

	post := func(spec job.Spec) *http.Response {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	spec := job.Spec{Kernel: "gauss", Params: job.Params{N: 32}, Procs: 2, Scheduler: "gss"}
	resp := post(spec)
	if resp.StatusCode != 200 {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.Scheduler != "GSS" || jr.Shard != "GSS×2" || jr.Phases != 31 || jr.Checksum == 0 {
		t.Fatalf("job response = %+v", jr)
	}

	// Same job again: the checksum is reproducible across the wire.
	resp = post(spec)
	var jr2 jobResponse
	json.NewDecoder(resp.Body).Decode(&jr2)
	resp.Body.Close()
	if jr2.Checksum != jr.Checksum {
		t.Fatalf("checksums differ across identical jobs: %v vs %v", jr.Checksum, jr2.Checksum)
	}

	// Over quota: 429 with a whole-seconds Retry-After header.
	if resp := post(tinySpec("metered")); resp.StatusCode != 200 {
		t.Fatalf("metered burst = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp = post(tinySpec("metered"))
	if resp.StatusCode != 429 {
		t.Fatalf("over-quota POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if er.Reason != "quota" || er.RetryAfterSecs <= 0 {
		t.Fatalf("shed body = %+v", er)
	}

	// Invalid spec: 400 naming the offending field.
	resp = post(job.Spec{Kernel: "spin", Procs: -1})
	if resp.StatusCode != 400 {
		t.Fatalf("invalid spec POST = %d, want 400", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if !strings.Contains(er.Error, "jobspec.procs") {
		t.Fatalf("400 body does not name the field: %+v", er)
	}

	for _, path := range []string{"/kernels", "/status", "/tenants", "/shards", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("index content type %q", ct)
	}
	resp.Body.Close()
}
