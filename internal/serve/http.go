package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strings"

	"repro/internal/job"
	"repro/internal/webui"
)

// jobResponse is the wire form of a completed submission.
type jobResponse struct {
	Tenant        string  `json:"tenant"`
	Scheduler     string  `json:"scheduler"`
	Procs         int     `json:"procs"`
	Shard         string  `json:"shard"`
	WaitNS        int64   `json:"wait_ns"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	Phases        int     `json:"phases"`
	Iterations    int64   `json:"iterations"`
	Steals        int64   `json:"steals"`
	MigratedIters int64   `json:"migrated_iters"`
	Checksum      float64 `json:"checksum"`
}

// errorResponse is the wire form of a refused submission.
type errorResponse struct {
	Error          string  `json:"error"`
	Reason         string  `json:"reason,omitempty"`
	RetryAfterSecs float64 `json:"retry_after_seconds,omitempty"`
}

// kernelInfo is one registry row on /kernels.
type kernelInfo struct {
	Name        string     `json:"name"`
	Description string     `json:"description"`
	Defaults    job.Params `json:"defaults"`
}

// NewHandler serves a Server over HTTP — the loopserved front door:
//
//	/          HTML index (shared webui scaffold, live /status poll)
//	/jobs      POST a job.Spec JSON; blocks until the job completes.
//	           400 invalid spec, 429 shed (Retry-After header),
//	           503 server closed, 500 kernel panic.
//	/kernels   registered kernels with their default params
//	/status    queue depth, dispatch totals, tenants, shards (JSON)
//	/tenants   the status's tenant rows only
//	/shards    the status's shard rows only
//	/healthz   liveness: 200 {"ok":true} until Close, then 503
//
// Observability (metrics, flight, traces, SLOs) is NOT mounted here —
// the daemon composes this handler with livemetrics.NewHandler and
// slo.Handler on their own routes, the same split engineview uses.
// label names the service in the HTML view.
func NewHandler(s *Server, label string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		renderServeIndex(w, label)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a job spec", http.StatusMethodNotAllowed)
			return
		}
		var spec job.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, &RejectError{Err: fmt.Errorf("decoding spec: %w", err)})
			return
		}
		res, err := s.Submit(r.Context(), spec)
		if err != nil {
			writeError(w, HTTPStatus(err), err)
			return
		}
		writeJSON(w, jobResponse{
			Tenant:        res.Tenant,
			Scheduler:     res.Scheduler,
			Procs:         res.Procs,
			Shard:         res.Shard,
			WaitNS:        res.Wait.Nanoseconds(),
			ElapsedNS:     res.Stats.Elapsed.Nanoseconds(),
			Phases:        res.Stats.Phases,
			Iterations:    res.Stats.Iterations,
			Steals:        res.Stats.Steals,
			MigratedIters: res.Stats.MigratedIters,
			Checksum:      res.Checksum,
		})
	})
	mux.HandleFunc("/kernels", func(w http.ResponseWriter, r *http.Request) {
		rows := make([]kernelInfo, 0)
		for _, k := range job.Kernels() {
			rows = append(rows, kernelInfo{Name: k.Name, Description: k.Description, Defaults: k.Defaults})
		}
		writeJSON(w, rows)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status().Tenants)
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status().Shards)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.closed.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			writeJSON(w, map[string]bool{"ok": false})
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	var shed *ShedError
	if errors.As(err, &shed) {
		resp.Reason = shed.Reason
		resp.RetryAfterSecs = shed.RetryAfter.Seconds()
		// Retry-After is whole seconds; round up so clients never retry
		// before the bucket actually refills.
		secs := int64(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

var serveIndexBody = template.Must(template.New("serveindex").Parse(`
<h1>loopserved — {{.Label}}</h1>
<p class="muted">Multi-tenant loop-scheduling service.
POST job specs to <a href="/jobs">/jobs</a>; see
<a href="/kernels">/kernels</a>, <a href="/status">/status</a>,
<a href="/tenants">/tenants</a>, <a href="/shards">/shards</a>,
<a href="/healthz">/healthz</a>.</p>

<h2>Admission</h2>
<p id="serve-status" class="muted">waiting for first scrape…</p>

<h2>Tenants</h2>
<table>
<thead><tr><th>tenant</th><th>weight</th><th>rate/s</th><th>burst</th><th>tokens</th></tr></thead>
<tbody id="tenant-rows"></tbody>
</table>

<h2>Shards</h2>
<p class="muted">Executor shards keyed scheduler×procs; jobs sharing a
shard reuse its persistent affinity state.</p>
<table>
<thead><tr><th>shard</th><th>scheduler</th><th>procs</th><th>submissions</th></tr></thead>
<tbody id="shard-rows"></tbody>
</table>
`))

const serveIndexScript = template.JS(`
function row(cells) {
  const tr = document.createElement('tr');
  for (const v of cells) {
    const td = document.createElement('td');
    td.textContent = v;
    tr.appendChild(td);
  }
  return tr;
}
function render(s) {
  document.getElementById('serve-status').textContent =
    s.queued + '/' + s.queue_limit + ' queued, ' +
    s.dispatched + ' dispatched' + (s.closed ? ' — CLOSED' : '');
  const tr = document.getElementById('tenant-rows');
  tr.innerHTML = '';
  for (const t of (s.tenants || [])) {
    tr.appendChild(row([t.tenant, t.weight,
      t.rate_per_sec > 0 ? t.rate_per_sec : '∞',
      t.burst, t.tokens.toFixed(1)]));
  }
  const sr = document.getElementById('shard-rows');
  sr.innerHTML = '';
  for (const sh of (s.shards || [])) {
    sr.appendChild(row([sh.shard, sh.scheduler, sh.procs, sh.submissions]));
  }
}
pollLoop('/status', 1000, render);
`)

func renderServeIndex(w http.ResponseWriter, label string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	serveIndexBody.Execute(&b, struct{ Label string }{label})
	webui.Render(w, webui.Page{
		Title:  "loopserved — " + label,
		Body:   template.HTML(b.String()),
		Script: serveIndexScript,
	})
}
