// Package serve turns the loop-scheduling runtime into a long-running
// multi-tenant service: loop jobs arrive as serializable job.Specs
// against named pre-registered kernels (loop bodies cannot cross the
// wire), pass a per-tenant admission pipeline — token-bucket quotas
// for absolute rate, a start-time weighted fair queue for proportional
// sharing, a bounded backlog that sheds (HTTP 429 + Retry-After)
// rather than queue unboundedly — and dispatch onto a pool of
// pool.Executor shards keyed by scheduler×procs, so the paper's
// affinity state (⌈N/P⌉ ownership, per-worker queues, warmed caches)
// persists fleet-wide across jobs that share a shard, exactly as the
// engine's dispatcher cache persists it across phases.
//
// The HTTP surface is NewHandler; the Go client is repro/serveclient;
// the daemon is cmd/loopserved.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/livemetrics"
	"repro/internal/pool"
	"repro/internal/spantrace"
)

// ErrClosed is returned by submissions against a closed server; its
// dynamic type is *core.ClosedError (the executor's close sentinel),
// and the HTTP layer maps it to 503.
var ErrClosed = pool.ErrClosed

// ShedError reports an admission refusal under overload: the job was
// never queued, and the client should retry no sooner than RetryAfter.
// The HTTP layer maps it to 429 with a Retry-After header.
type ShedError struct {
	Tenant string
	// Reason is "quota" (token bucket dry) or "backlog" (queue at its
	// depth bound).
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: tenant %q shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// RejectError reports a job refused as invalid (bad spec, unknown
// kernel or scheduler). The HTTP layer maps it to 400.
type RejectError struct{ Err error }

func (e *RejectError) Error() string { return "serve: rejected: " + e.Err.Error() }
func (e *RejectError) Unwrap() error { return e.Err }

// ParseTenants decodes a tenant-policy flag value: comma-separated
// NAME:WEIGHT:RATE:BURST entries with trailing fields optional
// (weight defaults to 1, rate 0 = no quota, burst max(1, rate)).
// Errors are prefixed with flagName, the internal/cli convention.
func ParseTenants(flagName, val string) (map[string]TenantConfig, error) {
	out := make(map[string]TenantConfig)
	if strings.TrimSpace(val) == "" {
		return out, nil
	}
	for _, ent := range strings.Split(val, ",") {
		parts := strings.Split(strings.TrimSpace(ent), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("%s: entry %q has no tenant name", flagName, ent)
		}
		var tc TenantConfig
		fields := []*float64{&tc.Weight, &tc.Rate, &tc.Burst}
		if len(parts)-1 > len(fields) {
			return nil, fmt.Errorf("%s: entry %q has more than name:weight:rate:burst", flagName, ent)
		}
		for i, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%s: entry %q field %d: want a non-negative number, got %q", flagName, ent, i+1, p)
			}
			*fields[i] = v
		}
		out[parts[0]] = tc
	}
	return out, nil
}

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	// Weight is the tenant's fair-queue share relative to other
	// backlogged tenants; <= 0 means 1.
	Weight float64 `json:"weight"`
	// Rate is the token-bucket refill in jobs/second; 0 means no quota.
	Rate float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity; 0 means max(1, Rate).
	Burst float64 `json:"burst"`
}

// Options configures a Server.
type Options struct {
	// Procs is the worker count for shards whose spec does not pin one;
	// 0 means GOMAXPROCS.
	Procs int
	// QueueLimit bounds the admission backlog (jobs admitted past their
	// quota but not yet dispatched); 0 means 256. At the bound, arrivals
	// shed.
	QueueLimit int
	// Dispatchers is the number of concurrent dispatch lanes pulling
	// from the fair queue; 0 means 1. One lane gives strict SFQ order
	// (deterministic fairness); more lanes trade ordering strictness
	// for shard-level parallelism.
	Dispatchers int
	// Tenants maps tenant names to their policy; absent tenants get
	// DefaultTenant.
	Tenants map[string]TenantConfig
	// DefaultTenant is the policy for unnamed tenants (zero value:
	// weight 1, no quota).
	DefaultTenant TenantConfig
	// Plane, when set, receives per-tenant admission telemetry and is
	// attached to every shard executor. Caller-owned.
	Plane *livemetrics.Plane
	// Tracer, when set, is attached to every shard executor.
	Tracer *spantrace.Tracer
	// Now overrides the admission clock (tests, deterministic CI
	// gates); default time.Now. Dispatch deadlines still use host time.
	Now func() time.Time
}

// submission is one job's state threaded from admission to dispatch.
type submission struct {
	spec   job.Spec
	run    *job.Runnable
	cfg    core.Config
	tenant string
	ctx    context.Context
	done   chan Result
}

// Result is one completed submission.
type Result struct {
	Tenant    string        `json:"tenant"`
	Scheduler string        `json:"scheduler"`
	Procs     int           `json:"procs"`
	Shard     string        `json:"shard"`
	Wait      time.Duration `json:"wait_ns"`
	Stats     core.Stats    `json:"-"`
	Checksum  float64       `json:"checksum"`
	err       error
}

// shardKey identifies one executor shard: jobs sharing a scheduler and
// worker count land on the same long-lived pool, so AFS ownership and
// cache warmth persist across them.
type shardKey struct {
	sched string
	procs int
}

func (k shardKey) String() string { return fmt.Sprintf("%s×%d", k.sched, k.procs) }

// Server is the multi-tenant loop-scheduling service. Create with New,
// submit from any number of goroutines (directly or via the HTTP
// handler), Close when done.
type Server struct {
	opts   Options
	now    func() time.Time
	plane  *livemetrics.Plane
	tracer *spantrace.Tracer

	q  *wfq
	wg sync.WaitGroup

	mu      sync.Mutex
	buckets map[string]*bucket
	shards  map[shardKey]*pool.Executor
	order   []shardKey

	closed     atomic.Bool
	dispatched atomic.Int64
}

// New starts a server: the fair queue, its dispatch lanes, and an
// (initially empty) shard pool.
func New(opts Options) (*Server, error) {
	if opts.Procs < 0 {
		return nil, fmt.Errorf("serve: Procs must be >= 0, got %d", opts.Procs)
	}
	if opts.Procs == 0 {
		opts.Procs = runtime.GOMAXPROCS(0)
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 256
	}
	if opts.Dispatchers <= 0 {
		opts.Dispatchers = 1
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.Plane != nil && opts.Tracer != nil {
		// Exemplars in the plane resolve to span trees, as in repro's
		// executor wiring.
		opts.Plane.SetTracer(opts.Tracer)
	}
	s := &Server{
		opts:    opts,
		now:     now,
		plane:   opts.Plane,
		tracer:  opts.Tracer,
		q:       newWFQ(opts.QueueLimit),
		buckets: make(map[string]*bucket),
		shards:  make(map[shardKey]*pool.Executor),
	}
	s.wg.Add(opts.Dispatchers)
	for i := 0; i < opts.Dispatchers; i++ {
		go s.dispatch()
	}
	return s, nil
}

func tenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

func (s *Server) tenantConfig(name string) TenantConfig {
	if c, ok := s.opts.Tenants[name]; ok {
		return c
	}
	return s.opts.DefaultTenant
}

func (s *Server) observe(tenant string, wait time.Duration, outcome livemetrics.AdmitOutcome) {
	if s.plane != nil {
		s.plane.ObserveAdmission(tenant, wait, outcome)
	}
}

// Submit runs one job through the full pipeline — validate, quota,
// fair queue, shard dispatch — and blocks until it completes, sheds,
// or the context is done. Error taxonomy: *RejectError (invalid),
// *ShedError (overload; retry later), ErrClosed (server shut down),
// *pool.PanicError (kernel body panicked), or the context's error.
func (s *Server) Submit(ctx context.Context, spec job.Spec) (Result, error) {
	tenant := tenantName(spec.Tenant)
	if s.closed.Load() {
		return Result{}, ErrClosed
	}
	run, err := job.Build(spec)
	if err != nil {
		s.observe(tenant, 0, livemetrics.AdmitRejected)
		return Result{}, &RejectError{Err: err}
	}
	cfg, err := spec.Config()
	if err != nil {
		s.observe(tenant, 0, livemetrics.AdmitRejected)
		return Result{}, &RejectError{Err: err}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d := spec.Deadline(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	now := s.now()
	tc := s.tenantConfig(tenant)
	s.mu.Lock()
	b, ok := s.buckets[tenant]
	if !ok {
		b = newBucket(tc.Rate, tc.Burst, now)
		s.buckets[tenant] = b
	}
	admit, retry := b.take(now)
	s.mu.Unlock()
	if !admit {
		s.observe(tenant, 0, livemetrics.AdmitShed)
		return Result{}, &ShedError{Tenant: tenant, Reason: "quota", RetryAfter: retry}
	}

	j := &submission{spec: spec, run: run, cfg: cfg, tenant: tenant, ctx: ctx, done: make(chan Result, 1)}
	if !s.q.push(j, tc.Weight, now) {
		if s.closed.Load() {
			return Result{}, ErrClosed
		}
		s.observe(tenant, 0, livemetrics.AdmitShed)
		// The backlog gives no per-tenant refill signal; advise one
		// dispatch interval's worth of backoff per queued job ahead.
		return Result{}, &ShedError{Tenant: tenant, Reason: "backlog", RetryAfter: time.Second}
	}

	select {
	case res := <-j.done:
		return res, res.err
	case <-ctx.Done():
		// Withdrawn while queued (or mid-run — the shard sees the same
		// ctx and cancels at chunk granularity; its result is discarded).
		s.observe(tenant, 0, livemetrics.AdmitRejected)
		return Result{}, ctx.Err()
	}
}

// dispatch is one lane: pull jobs in fair order, run each on its
// shard, deliver the result.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		en := s.q.pop()
		if en == nil {
			return
		}
		j := en.e
		if j.ctx.Err() != nil {
			continue // withdrawn while queued; the submitter already returned
		}
		wait := s.now().Sub(en.enqueued)
		s.observe(j.tenant, wait, livemetrics.AdmitAdmitted)
		res := s.run(j, wait)
		if res.err == nil {
			s.dispatched.Add(1)
			if s.plane != nil {
				s.plane.ObserveTenantCompletion(j.tenant)
			}
		}
		j.done <- res
	}
}

func (s *Server) run(j *submission, wait time.Duration) Result {
	procs := j.spec.Procs
	if procs <= 0 {
		procs = s.opts.Procs
	}
	key := shardKey{sched: j.spec.SchedulerName(), procs: procs}
	x, err := s.shard(key)
	if err != nil {
		return Result{err: err}
	}
	st, err := x.SubmitPhases(j.ctx, j.cfg, j.run.Phases, j.run.N, j.run.Body)
	return Result{
		Tenant:    j.tenant,
		Scheduler: key.sched,
		Procs:     procs,
		Shard:     key.String(),
		Wait:      wait,
		Stats:     st,
		Checksum:  j.run.Checksum(),
		err:       err,
	}
}

// shard returns the executor for a key, creating it on first use —
// the fleet-wide analogue of the engine caching its AFS dispatcher by
// spec×procs: every future job with this scheduler and worker count
// reuses the shard's persistent ownership state.
func (s *Server) shard(key shardKey) (*pool.Executor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if x, ok := s.shards[key]; ok {
		return x, nil
	}
	x, err := pool.New(key.procs)
	if err != nil {
		return nil, &RejectError{Err: err}
	}
	if s.plane != nil {
		x.SetObservability(s.plane)
	}
	if s.tracer != nil {
		x.SetTracer(s.tracer)
	}
	s.shards[key] = x
	s.order = append(s.order, key)
	return x, nil
}

// TenantStatus is one tenant's live admission policy and bucket level.
type TenantStatus struct {
	Tenant string  `json:"tenant"`
	Weight float64 `json:"weight"`
	Rate   float64 `json:"rate_per_sec"`
	Burst  float64 `json:"burst"`
	Tokens float64 `json:"tokens"`
}

// ShardStatus is one executor shard.
type ShardStatus struct {
	Shard       string `json:"shard"`
	Scheduler   string `json:"scheduler"`
	Procs       int    `json:"procs"`
	Submissions int64  `json:"submissions"`
}

// Status is the server's introspection snapshot (the /status
// endpoint).
type Status struct {
	Queued     int            `json:"queued"`
	QueueLimit int            `json:"queue_limit"`
	Dispatched int64          `json:"dispatched"`
	Closed     bool           `json:"closed"`
	Tenants    []TenantStatus `json:"tenants,omitempty"`
	Shards     []ShardStatus  `json:"shards,omitempty"`
}

// Status reports queue depth, dispatch totals, per-tenant bucket
// levels, and the shard pool.
func (s *Server) Status() Status {
	st := Status{
		Queued:     s.q.depth(),
		QueueLimit: s.opts.QueueLimit,
		Dispatched: s.dispatched.Load(),
		Closed:     s.closed.Load(),
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, b := range s.buckets {
		tc := s.tenantConfig(name)
		w := tc.Weight
		if w <= 0 {
			w = 1
		}
		tokens := b.tokens
		if b.rate > 0 {
			if dt := now.Sub(b.last).Seconds(); dt > 0 {
				tokens = minf(b.burst, tokens+dt*b.rate)
			}
		}
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant: name, Weight: w, Rate: b.rate, Burst: b.burst, Tokens: tokens,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	for _, key := range s.order {
		st.Shards = append(st.Shards, ShardStatus{
			Shard: key.String(), Scheduler: key.sched, Procs: key.procs,
			Submissions: s.shards[key].Submissions(),
		})
	}
	return st
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Close drains: new submissions fail with ErrClosed, queued jobs that
// never reached a dispatcher fail with ErrClosed, in-flight jobs
// finish, then every shard executor shuts down. Idempotent.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	for _, en := range s.q.close() {
		s.observe(en.e.tenant, 0, livemetrics.AdmitRejected)
		en.e.done <- Result{err: ErrClosed}
	}
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, x := range s.shards {
		x.Close()
	}
	return nil
}

// HTTPStatus maps a Submit error to its HTTP status; shared by the
// handler, the perflab shed gate, and tests. 0 means no error.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrClosed):
		return 503
	default:
		var shed *ShedError
		var rej *RejectError
		var pe *pool.PanicError
		switch {
		case errors.As(err, &shed):
			return 429
		case errors.As(err, &rej):
			return 400
		case errors.As(err, &pe):
			return 500
		}
		return 500
	}
}
