package serve

import (
	"container/heap"
	"math"
	"sync"
	"time"
)

// bucket is a token bucket enforcing one tenant's admission quota.
// Time is injected (the server's clock), so quota behaviour is exactly
// reproducible under a fake clock in tests and CI gates. rate == 0
// means unlimited — the bucket always admits.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take spends one token if available. When the bucket is dry it
// reports the delay until the next token accrues — the Retry-After a
// shed response carries, so well-behaved clients back off to exactly
// the sustainable rate instead of hammering.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// entry is one job waiting for dispatch, tagged with its SFQ virtual
// start/finish times.
type entry struct {
	e        *submission
	start    float64
	finish   float64
	seq      uint64
	enqueued time.Time
}

// wfq is a start-time fair queue (SFQ) over tenants: each arriving job
// is stamped start = max(virtualTime, tenant's last finish) and
// finish = start + 1/weight, dispatch always takes the smallest finish
// tag, and virtual time advances to the start tag of the job entering
// service. Backlogged tenants therefore share dispatch slots in
// proportion to their weights regardless of how fast each one submits
// — the fairness half of admission control, complementing the token
// buckets' absolute quotas. Depth is bounded; push refuses (the caller
// sheds) rather than queue unboundedly.
type wfq struct {
	mu         sync.Mutex
	cond       *sync.Cond
	limit      int
	vtime      float64
	lastFinish map[string]float64
	heap       entryHeap
	seq        uint64
	closed     bool
}

func newWFQ(limit int) *wfq {
	q := &wfq{limit: limit, lastFinish: make(map[string]float64)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues under the tenant's weight; false means the queue is at
// its depth bound (or closed) and the job must be shed.
func (q *wfq) push(j *submission, weight float64, now time.Time) bool {
	if weight <= 0 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.heap.Len() >= q.limit {
		return false
	}
	s := math.Max(q.vtime, q.lastFinish[j.tenant])
	f := s + 1/weight
	q.lastFinish[j.tenant] = f
	q.seq++
	heap.Push(&q.heap, &entry{e: j, start: s, finish: f, seq: q.seq, enqueued: now})
	q.cond.Signal()
	return true
}

// pop blocks for the next job in virtual-finish order, advancing
// virtual time to its start tag. nil means the queue closed.
func (q *wfq) pop() *entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.heap.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.heap.Len() == 0 {
		return nil
	}
	en := heap.Pop(&q.heap).(*entry)
	q.vtime = math.Max(q.vtime, en.start)
	return en
}

// depth reports the current backlog.
func (q *wfq) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.heap.Len()
}

// close wakes all poppers and returns the undispatched backlog so the
// server can fail each waiter with ErrClosed.
func (q *wfq) close() []*entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	orphans := make([]*entry, 0, q.heap.Len())
	for q.heap.Len() > 0 {
		orphans = append(orphans, heap.Pop(&q.heap).(*entry))
	}
	q.cond.Broadcast()
	return orphans
}

// entryHeap orders by (finish tag, arrival) — SFQ dispatch order with
// FIFO tie-breaking.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
