package cli

import (
	"strings"
	"testing"
	"time"
)

// Every helper must lead its error with the offending flag's name —
// that is the contract the three CLIs share.
func TestPositiveInt(t *testing.T) {
	if err := PositiveInt("-repeats", 3); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	for _, v := range []int{0, -2} {
		err := PositiveInt("-repeats", v)
		if err == nil {
			t.Fatalf("PositiveInt(%d): no error", v)
		}
		if !strings.HasPrefix(err.Error(), "-repeats ") {
			t.Errorf("error %q does not lead with the flag name", err)
		}
	}
}

func TestNonNegativeInt(t *testing.T) {
	for _, v := range []int{0, 3} {
		if err := NonNegativeInt("-retries", v); err != nil {
			t.Errorf("NonNegativeInt(%d) rejected: %v", v, err)
		}
	}
	err := NonNegativeInt("-retries", -1)
	if err == nil {
		t.Fatal("NonNegativeInt(-1): no error")
	}
	if !strings.HasPrefix(err.Error(), "-retries ") {
		t.Errorf("error %q does not lead with the flag name", err)
	}
}

func TestPositiveFloat(t *testing.T) {
	if err := PositiveFloat("-threshold", 0.05); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	if err := PositiveFloat("-threshold", 0); err == nil || !strings.HasPrefix(err.Error(), "-threshold ") {
		t.Errorf("zero threshold: %v", err)
	}
}

func TestPositiveDuration(t *testing.T) {
	if err := PositiveDuration("-watch", 2*time.Second); err != nil {
		t.Errorf("valid interval rejected: %v", err)
	}
	for _, v := range []time.Duration{0, -time.Second} {
		err := PositiveDuration("-watch", v)
		if err == nil {
			t.Fatalf("PositiveDuration(%v): no error", v)
		}
		if !strings.HasPrefix(err.Error(), "-watch ") {
			t.Errorf("error %q does not lead with the flag name", err)
		}
	}
}

func TestUint64Arg(t *testing.T) {
	if v, err := Uint64Arg("trace ID", "42"); err != nil || v != 42 {
		t.Errorf("Uint64Arg(42) = %d, %v", v, err)
	}
	for _, bad := range []string{"0", "-3", "abc", ""} {
		if _, err := Uint64Arg("trace ID", bad); err == nil || !strings.HasPrefix(err.Error(), "trace ID ") {
			t.Errorf("Uint64Arg(%q): %v", bad, err)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil, nil); err != nil {
		t.Errorf("all-nil returned %v", err)
	}
	err := FirstError(nil, PositiveInt("-n", 0), PositiveInt("-phases", -1))
	if err == nil || !strings.Contains(err.Error(), "-n") {
		t.Errorf("FirstError returned %v, want the -n error", err)
	}
}

func TestProcsAndAlgosFlagPrefix(t *testing.T) {
	if _, err := ProcsFlag("-workers", "1,2,zero"); err == nil ||
		!strings.HasPrefix(err.Error(), "-workers: ") {
		t.Errorf("ProcsFlag error %v", err)
	}
	if counts, err := ProcsFlag("-workers", "1,2,4"); err != nil || len(counts) != 3 {
		t.Errorf("valid list rejected: %v %v", counts, err)
	}
	if _, err := AlgosFlag("-algos", "afs,warp-drive"); err == nil ||
		!strings.HasPrefix(err.Error(), "-algos: ") ||
		!strings.Contains(err.Error(), "warp-drive") {
		t.Errorf("AlgosFlag error %v", err)
	}
}

func TestInjectFlag(t *testing.T) {
	m, err := InjectFlag("-inject", "sim/iris/gauss/afs/p8=1.25, sim/iris/sor/gss/p8=2")
	if err != nil || len(m) != 2 || m["sim/iris/gauss/afs/p8"] != 1.25 {
		t.Fatalf("valid inject rejected: %v %v", m, err)
	}
	if m, err := InjectFlag("-inject", ""); err != nil || m != nil {
		t.Errorf("empty inject: %v %v", m, err)
	}
	for _, bad := range []string{"caseid", "caseid=", "caseid=0", "caseid=-1", "caseid=x"} {
		if _, err := InjectFlag("-inject", bad); err == nil {
			t.Errorf("InjectFlag(%q): no error", bad)
		} else if !strings.HasPrefix(err.Error(), "-inject: ") {
			t.Errorf("InjectFlag(%q) error %q does not lead with the flag name", bad, err)
		}
	}
}
