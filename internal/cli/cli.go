// Package cli hosts the flag-parsing and workload-construction helpers
// shared by the command-line tools, kept out of package main so they
// are unit-testable.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BuildKernel maps a kernel name to a simulator-program builder and a
// human-readable description. The builder is re-invoked per run so
// stateful models start fresh. Supported names: sor, gauss, tc-random,
// tc-skew, adjoint, adjoint-rev, l4, triangular, parabolic, step,
// irregular, balanced.
func BuildKernel(name string, n, phases int, seed int64, m *machine.Machine) (func() sim.Program, string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "sor":
		return func() sim.Program { return kernels.SOR{N: n, Phases: phases}.Program(m) },
			fmt.Sprintf("SOR %d×%d, %d sweeps", n, n, phases), nil
	case "gauss":
		return func() sim.Program { return kernels.Gauss{N: n}.Program(m) },
			fmt.Sprintf("Gaussian elimination %d×%d", n, n), nil
	case "tc-random", "tc":
		g := workload.RandomGraph(n, 0.08, seed)
		return func() sim.Program { return kernels.TClosure{Input: g}.Program(m) },
			fmt.Sprintf("transitive closure, random %d nodes (8%%)", n), nil
	case "tc-skew", "tc-clique":
		g := workload.CliqueGraph(n, n/2)
		return func() sim.Program { return kernels.TClosure{Input: g}.Program(m) },
			fmt.Sprintf("transitive closure, %d nodes with %d-clique", n, n/2), nil
	case "adjoint":
		return func() sim.Program { return kernels.Adjoint{N: n}.Program(m) },
			fmt.Sprintf("adjoint convolution N=%d", n), nil
	case "adjoint-rev":
		return func() sim.Program { return kernels.Adjoint{N: n, Reverse: true}.Program(m) },
			fmt.Sprintf("adjoint convolution (reversed) N=%d", n), nil
	case "l4":
		return func() sim.Program { return kernels.L4{Outer: phases, Seed: seed}.Program(m) },
			fmt.Sprintf("L4, %d outer iterations", phases), nil
	case "triangular":
		return func() sim.Program { return workload.Program("TRI", n, workload.Triangular(n), 4) },
			fmt.Sprintf("triangular workload N=%d", n), nil
	case "parabolic":
		return func() sim.Program { return workload.Program("PARAB", n, workload.Parabolic(n), 4) },
			fmt.Sprintf("parabolic workload N=%d", n), nil
	case "step":
		return func() sim.Program { return workload.Program("STEP", n, workload.Step(n, 0.1, 100, 1), 40) },
			fmt.Sprintf("step workload N=%d", n), nil
	case "irregular":
		cost := workload.Irregular(n, 0.05, 1000, 10, seed)
		return func() sim.Program { return workload.Program("IRREG", n, cost, 4) },
			fmt.Sprintf("irregular workload N=%d (cv=%.2f)", n, workload.CV(n, cost)), nil
	case "balanced":
		return func() sim.Program { return workload.Program("BAL", n, workload.Balanced(500), 4) },
			fmt.Sprintf("balanced workload N=%d", n), nil
	}
	return nil, "", fmt.Errorf("unknown kernel %q (sor, gauss, tc-random, tc-skew, adjoint, adjoint-rev, l4, triangular, parabolic, step, irregular, balanced)", name)
}

// ParseProcs parses a comma-separated list of processor counts.
func ParseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseAlgos resolves a comma-separated list of algorithm names.
func ParseAlgos(s string) ([]sched.Spec, error) {
	var out []sched.Spec
	for _, name := range strings.Split(s, ",") {
		spec, err := sched.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}
