package cli

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestBuildKernelAll instantiates and simulates every kernel name.
func TestBuildKernelAll(t *testing.T) {
	m := machine.Iris()
	names := []string{
		"sor", "gauss", "tc-random", "tc", "tc-skew", "tc-clique",
		"adjoint", "adjoint-rev", "l4", "triangular", "parabolic",
		"step", "irregular", "balanced",
	}
	for _, name := range names {
		build, desc, err := BuildKernel(name, 32, 2, 1, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if desc == "" {
			t.Errorf("%s: empty description", name)
		}
		prog := build()
		if prog.Steps < 1 {
			t.Errorf("%s: no steps", name)
		}
		res, err := sim.Run(m, 4, sched.SpecAFS(), prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("%s: no progress", name)
		}
		// The builder must produce fresh, equivalent programs.
		again, err := sim.Run(m, 4, sched.SpecAFS(), build())
		if err != nil {
			t.Fatalf("%s rebuild: %v", name, err)
		}
		if again.Cycles != res.Cycles {
			t.Errorf("%s: rebuilt program differs (%v vs %v cycles)", name, again.Cycles, res.Cycles)
		}
	}
	if _, _, err := BuildKernel("warp-drive", 32, 2, 1, m); err == nil ||
		!strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("unknown kernel error = %v", err)
	}
	// Case/whitespace tolerance.
	if _, _, err := BuildKernel("  SOR ", 16, 1, 1, m); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestParseProcs(t *testing.T) {
	got, err := ParseProcs("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("ParseProcs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,,2"} {
		if _, err := ParseProcs(bad); err == nil {
			t.Errorf("ParseProcs(%q) accepted", bad)
		}
	}
}

func TestParseAlgos(t *testing.T) {
	got, err := ParseAlgos("afs,gss, trapezoid")
	if err != nil || len(got) != 3 || got[0].Name != "AFS" {
		t.Errorf("ParseAlgos = %v, %v", got, err)
	}
	if _, err := ParseAlgos("afs,wibble"); err == nil {
		t.Error("bad algorithm accepted")
	}
}
