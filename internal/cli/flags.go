package cli

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/sched"
)

// The flag-validation helpers below give every command-line tool the
// same offending-flag error shape: the message always leads with the
// flag's name ("-repeats must be >= 1 (got 0)", "-algos: unknown
// algorithm ..."), so a user of realbench, perflab or loopdoctor sees
// identical diagnostics for identical mistakes.

// PositiveInt rejects values below 1, naming the offending flag.
func PositiveInt(flagName string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be >= 1 (got %d)", flagName, v)
	}
	return nil
}

// NonNegativeInt rejects values below 0, naming the offending flag —
// the validator for count flags where zero is a meaningful "off"
// (loopdoctor attach -retries 0 disables retrying).
func NonNegativeInt(flagName string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d)", flagName, v)
	}
	return nil
}

// PositiveFloat rejects non-positive values, naming the flag.
func PositiveFloat(flagName string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("%s must be > 0 (got %g)", flagName, v)
	}
	return nil
}

// PositiveDuration rejects non-positive durations, naming the flag —
// the validator behind every polling-interval flag (loopdoctor attach
// -watch), where zero or negative would spin a hot loop.
func PositiveDuration(flagName string, v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("%s must be a positive duration (got %v)", flagName, v)
	}
	return nil
}

// Uint64Arg parses a positive integer operand (e.g. loopdoctor's
// trace ID), naming the operand in the error like the flag validators
// name their flag.
func Uint64Arg(name, val string) (uint64, error) {
	v, err := strconv.ParseUint(val, 10, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("%s must be a positive integer (got %q)", name, val)
	}
	return v, nil
}

// OneOf rejects values outside the allowed set, naming the flag and
// spelling out the choices.
func OneOf(flagName, v string, allowed ...string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("%s must be one of %s (got %q)", flagName, strings.Join(allowed, ", "), v)
}

// Subset rejects comma-separated values outside the allowed set,
// naming the flag and the first offending entry. Empty means "all"
// and is accepted.
func Subset(flagName, val string, allowed ...string) ([]string, error) {
	if strings.TrimSpace(val) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		if err := OneOf(flagName, part, allowed...); err != nil {
			return nil, err
		}
		out = append(out, part)
	}
	return out, nil
}

// FirstError returns the first non-nil error, letting callers validate
// a flag set in one expression:
//
//	if err := cli.FirstError(
//	    cli.PositiveInt("-n", n),
//	    cli.PositiveInt("-repeats", repeats),
//	); err != nil { ... }
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ProcsFlag parses a comma-separated processor-count list, prefixing
// errors with the flag's name.
func ProcsFlag(flagName, val string) ([]int, error) {
	out, err := ParseProcs(val)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", flagName, err)
	}
	return out, nil
}

// AlgosFlag resolves a comma-separated algorithm list, prefixing
// errors with the flag's name.
func AlgosFlag(flagName, val string) ([]sched.Spec, error) {
	out, err := ParseAlgos(val)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", flagName, err)
	}
	return out, nil
}

// AddrFlag validates a host:port listen address, naming the flag —
// the standard validator for every command that starts an HTTP server
// (perflab serve, engineview). The host may be empty (all interfaces)
// and the port may be 0 (kernel-assigned) or a service name; a value
// with no port at all is rejected before net.Listen turns it into a
// confusing bind error.
func AddrFlag(flagName, val string) (string, error) {
	if _, _, err := net.SplitHostPort(val); err != nil {
		return "", fmt.Errorf("%s must be a host:port listen address (got %q): %v", flagName, val, err)
	}
	return val, nil
}

// InjectFlag parses a 'caseID=factor,...' sample-multiplier list (the
// perflab gate's synthetic-slowdown test hook), prefixing errors with
// the flag's name.
func InjectFlag(flagName, val string) (map[string]float64, error) {
	if val == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(val, ",") {
		id, factor, ok := strings.Cut(pair, "=")
		f, err := strconv.ParseFloat(factor, 64)
		if !ok || err != nil || f <= 0 {
			return nil, fmt.Errorf("%s: bad entry %q (want caseID=factor)", flagName, pair)
		}
		out[strings.TrimSpace(id)] = f
	}
	return out, nil
}
