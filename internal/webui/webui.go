// Package webui holds the shared HTML scaffolding for the repo's
// introspection servers (perflab serve, engineview): one stylesheet,
// one page skeleton, and one JSON-poll auto-refresh helper, so the
// dashboards stay visually and behaviourally consistent without
// duplicating markup.
package webui

import (
	"html/template"
	"io"
)

// CSS is the shared dashboard stylesheet.
const CSS = `
body { font-family: sans-serif; margin: 2em; max-width: 1100px; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
.trend { margin: 1em 0; }
.regression { color: #c00; font-weight: bold; }
.muted { color: #555; }
`

// PollJS defines pollLoop(url, everyMS, apply): fetch url as JSON,
// hand the parsed value to apply, swallow transient fetch errors (the
// server may be restarting) and re-arm. Pages add their own apply
// function in Page.Script and start the loop themselves.
const PollJS = `
async function pollLoop(url, everyMS, apply) {
  try {
    const r = await fetch(url);
    apply(await r.json());
  } catch (e) { /* server restarting; keep polling */ }
  setTimeout(() => pollLoop(url, everyMS, apply), everyMS);
}
`

// Page is one dashboard page: pre-rendered body markup plus the page's
// own script, wrapped by Render in the shared skeleton.
type Page struct {
	Title  string
	Body   template.HTML
	Script template.JS
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title>
<style>{{.CSS}}</style></head>
<body>
{{.Body}}
<script>
{{.PollJS}}
{{.Script}}
</script>
</body></html>
`))

// Render writes the complete page: shared CSS and poll helper plus the
// page's body and script.
func Render(w io.Writer, p Page) error {
	return pageTmpl.Execute(w, struct {
		Page
		CSS    template.CSS
		PollJS template.JS
	}{p, CSS, PollJS})
}
