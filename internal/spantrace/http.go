package spantrace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/telemetry"
)

// forensicsFile mirrors forensics.Trace's JSON wire format without
// importing the forensics package (which would drag the simulator into
// the tracing layer); compatibility is locked by a round-trip test
// against forensics.ReadTrace.
type forensicsFile struct {
	Meta struct {
		Label     string `json:"label,omitempty"`
		Substrate string `json:"substrate,omitempty"`
		Procs     int    `json:"procs"`
		TimeUnit  string `json:"time_unit,omitempty"`
	} `json:"meta"`
	Events []telemetry.Event `json:"events,omitempty"`
	Prov   []telemetry.Prov  `json:"prov,omitempty"`
}

// WriteForensics serializes the trace in the forensics trace-file wire
// format (the same shape loopdoctor analyze/attach read), lowering the
// span tree through Telemetry.
func (t *Trace) WriteForensics(w io.Writer, substrate, timeUnit string) error {
	var f forensicsFile
	f.Meta.Label = t.Label
	if f.Meta.Label == "" {
		f.Meta.Label = fmt.Sprintf("trace %d (%s)", t.TraceID, t.Scheduler)
	}
	f.Meta.Substrate = substrate
	f.Meta.Procs = t.Procs
	f.Meta.TimeUnit = timeUnit
	f.Events, f.Prov = t.Telemetry()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// TraceSummary is the list row served for one retained trace.
type TraceSummary struct {
	TraceID    uint64  `json:"trace_id"`
	Label      string  `json:"label,omitempty"`
	Scheduler  string  `json:"scheduler,omitempty"`
	Procs      int     `json:"procs"`
	Phases     int     `json:"phases"`
	Outcome    string  `json:"outcome"`
	DurationNS float64 `json:"duration_ns"`
	Spans      int     `json:"spans"`
	Chunks     int     `json:"chunks"`
	Steals     int     `json:"steals"`
	Dropped    int64   `json:"dropped,omitempty"`
}

// Summary condenses a trace to its list row.
func (t *Trace) Summary() TraceSummary {
	return TraceSummary{
		TraceID: t.TraceID, Label: t.Label, Scheduler: t.Scheduler,
		Procs: t.Procs, Phases: t.Phases, Outcome: t.Outcome,
		DurationNS: t.DurationNS, Spans: len(t.Spans),
		Chunks: t.Chunks(), Steals: t.Steals(), Dropped: t.Dropped,
	}
}

// ServeTraces writes the tracer's retained traces (newest first) as a
// JSON list of summaries.
func ServeTraces(w http.ResponseWriter, t *Tracer) {
	out := []TraceSummary{}
	for _, tr := range t.Traces() {
		out = append(out, tr.Summary())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// ServeTrace resolves ?id= against the tracer and serves the span
// tree. ?format=json (default) is the Trace structure itself;
// ?format=trace is the forensics trace-file form loopdoctor reads.
func ServeTrace(w http.ResponseWriter, r *http.Request, t *Tracer) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad trace id %q", idStr), http.StatusBadRequest)
		return
	}
	tr := t.Get(id)
	if tr == nil {
		http.Error(w, fmt.Sprintf("trace %d not found (evicted or never recorded)", id), http.StatusNotFound)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr)
	case "trace":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteForensics(w, "real", "ns"); err != nil {
			return // headers sent; the client went away
		}
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json|trace)", format), http.StatusBadRequest)
	}
}

// Handler serves a tracer standalone (repro.TraceHandler):
//
//	/traces        JSON list of retained trace summaries, newest first
//	/trace?id=N    one span tree (?format=json|trace)
//
// livemetrics.NewHandler mounts the same endpoints when its plane has
// a tracer attached, which is the usual path; this standalone form is
// for embedders running a tracer without the live plane.
func Handler(t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		ServeTraces(w, t)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		ServeTrace(w, r, t)
	})
	return mux
}
