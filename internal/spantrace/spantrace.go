// Package spantrace is the causal tracing layer for the execution
// engine: every submission becomes a span tree — one submission root,
// one span per phase, one span per executed chunk, one span per steal
// — with parent/child and steals-from causal links, so a tail-latency
// exemplar surfaced by the live plane (internal/livemetrics) resolves
// to the exact dispatch history that produced it.
//
// Layering mirrors livemetrics: core defines the SpanObserver
// interface (pure signatures, no imports) and an *Active satisfies it
// structurally, so core never imports this package. The hot path is
// allocation- and lock-free per observation: each worker goroutine
// appends to its own pre-grown span buffer (single writer; the phase
// barrier publishes the writes before End merges them), span IDs are
// derived deterministically from (worker, local index), and the only
// shared mutable state is an atomic drop counter. On the simulator
// substrate the same trees are rebuilt from telemetry streams
// (FromTelemetry), bit-identical across runs at a fixed seed.
package spantrace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies one span.
type Kind uint8

const (
	// KindSubmission is the root span covering the whole submission.
	KindSubmission Kind = iota
	// KindPhase covers one barrier-separated phase.
	KindPhase
	// KindChunk covers one executed chunk's loop-body window.
	KindChunk
	// KindSteal covers one successful steal operation (victim lock
	// acquisition through chunk removal).
	KindSteal
)

var kindNames = [...]string{"submission", "phase", "chunk", "steal"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its name, so exported trees are
// readable and byte-stable.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the name form written by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if s == `"`+n+`"` {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("spantrace: unknown span kind %s", s)
}

// Span is one node of a submission's span tree. Timestamps are
// nanoseconds on the runner's telemetry clock (ns since the submission
// started; simulated cycles on the sim substrate).
type Span struct {
	// ID is unique within the trace and deterministic for a fixed
	// schedule: the root is 1, phase ph is 2+ph, and worker w's i-th
	// recorded span is (w+1)<<20 + i.
	ID uint64 `json:"id"`
	// Parent is the enclosing span's ID (0 for the root). Chunk and
	// steal spans parent to their phase span.
	Parent uint64 `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	// Phase is the phase index the span belongs to (-1 for the root).
	Phase int `json:"phase"`
	// Proc is the worker that produced the span (-1 for root/phase).
	Proc int `json:"proc"`
	// Owner is the owning queue for chunk spans (-1 for central
	// dispensers) and the victim for steal spans.
	Owner int `json:"owner"`
	// Stolen marks a chunk span whose iterations migrated.
	Stolen bool `json:"stolen,omitempty"`
	// StealsFrom links a stolen chunk span to the steal span that moved
	// its iterations — the causal edge across workers.
	StealsFrom uint64 `json:"steals_from,omitempty"`
	// Lo/Hi is the iteration range [Lo, Hi) (0/0 for root and phase
	// spans; Hi carries the phase's iteration count on phase spans).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Start/End bound the span on the telemetry clock.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Trace is one sealed submission's span tree.
type Trace struct {
	// TraceID identifies the trace within its Tracer; exemplars in the
	// live plane carry it so /metrics tails resolve to span trees.
	TraceID uint64 `json:"trace_id"`
	// Label is free-form submission metadata (scheduler, shape).
	Label string `json:"label,omitempty"`
	// Scheduler is the sched.Spec name the submission ran under.
	Scheduler string `json:"scheduler,omitempty"`
	Procs     int    `json:"procs"`
	Phases    int    `json:"phases"`
	// Outcome is "ok", "cancelled" or "panicked".
	Outcome string `json:"outcome"`
	// DurationNS is the root span's extent on the telemetry clock.
	DurationNS float64 `json:"duration_ns"`
	// Dropped counts spans discarded at the per-trace cap.
	Dropped int64 `json:"dropped,omitempty"`
	// Spans is the whole tree, sorted by (Start, ID); Spans[0] is the
	// root.
	Spans []Span `json:"spans"`
}

// Chunks counts the trace's chunk spans.
func (t *Trace) Chunks() int { return t.countKind(KindChunk) }

// Steals counts the trace's steal spans.
func (t *Trace) Steals() int { return t.countKind(KindSteal) }

func (t *Trace) countKind(k Kind) int {
	n := 0
	for _, s := range t.Spans {
		if s.Kind == k {
			n++
		}
	}
	return n
}

// Span returns the span with the given ID, or nil.
func (t *Trace) Span(id uint64) *Span {
	for i := range t.Spans {
		if t.Spans[i].ID == id {
			return &t.Spans[i]
		}
	}
	return nil
}

// Options sizes a Tracer. The zero value gives usable defaults.
type Options struct {
	// MaxSpans caps one trace's span count (default 16384); further
	// observations increment Trace.Dropped instead of growing the tree.
	// The cap is split evenly across workers, so one runaway worker
	// cannot evict the others' spans.
	MaxSpans int
	// Store caps the completed traces retained for lookup (default 64,
	// evicted oldest-first).
	Store int
}

func (o Options) withDefaults() Options {
	if o.MaxSpans <= 0 {
		o.MaxSpans = 16384
	}
	if o.Store <= 0 {
		o.Store = 64
	}
	return o
}

// Tracer mints trace IDs and retains a bounded ring of completed
// traces, keyed for lookup by loopdoctor trace / the HTTP trace
// endpoints. Safe for concurrent use.
type Tracer struct {
	opts Options
	seq  atomic.Uint64

	mu      sync.Mutex
	order   []uint64 // insertion order, oldest first
	byID    map[uint64]*Trace
	evicted int64
}

// NewTracer creates a tracer.
func NewTracer(opts Options) *Tracer {
	o := opts.withDefaults()
	return &Tracer{opts: o, byID: make(map[uint64]*Trace, o.Store)}
}

// SubmissionInfo labels a starting submission.
type SubmissionInfo struct {
	Label     string
	Scheduler string
	Procs     int
	Phases    int
}

// StartSubmission opens a span collection for one submission. The
// returned Active satisfies core.SpanObserver structurally; wire it
// into the submission's hooks, then seal with End (storing the trace)
// or discard with Abandon. Every Start must be paired with exactly one
// End or Abandon on every return path (enforced by schedlint's
// telemetry span-balance rule in core and pool).
func (t *Tracer) StartSubmission(info SubmissionInfo) *Active {
	procs := info.Procs
	if procs < 1 {
		procs = 1
	}
	per := t.opts.MaxSpans / procs
	if per < 1 {
		per = 1
	}
	a := &Active{
		tracer:       t,
		id:           t.seq.Add(1),
		info:         info,
		procs:        procs,
		maxPerWorker: per,
		workers:      make([]workerBuf, procs),
	}
	return a
}

// Get returns the completed trace with the given ID, or nil if it was
// never recorded or has been evicted.
func (t *Tracer) Get(id uint64) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// Traces lists the retained completed traces, newest first.
func (t *Tracer) Traces() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		out = append(out, t.byID[t.order[i]])
	}
	return out
}

// Evicted counts traces dropped from the store since creation.
func (t *Tracer) Evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

func (t *Tracer) store(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.order = append(t.order, tr.TraceID)
	t.byID[tr.TraceID] = tr
	for len(t.order) > t.opts.Store {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, old)
		t.evicted++
	}
}

// workerBuf is one worker's private span buffer. Only worker w's
// goroutine touches workers[w] during execution; the phase barrier
// orders those writes before End's merge. Padded so neighbouring
// workers don't share a cache line.
type workerBuf struct {
	spans []Span
	// lastSteal is the ID of the worker's most recent steal span, not
	// yet linked to a chunk: on AFS a steal is immediately followed by
	// executing the stolen chunk on the same goroutine, so the next
	// stolen chunk span claims it as its StealsFrom edge.
	lastSteal uint64
	_         [4]uint64
}

// Active is one in-flight submission's span collection. Methods named
// On* are the hot-path observers (called inline from workers via
// core.SpanObserver); End and Abandon seal it. An Active must not be
// reused after End or Abandon.
type Active struct {
	tracer       *Tracer
	id           uint64
	info         SubmissionInfo
	procs        int
	maxPerWorker int
	workers      []workerBuf
	phases       []Span // appended only by the submitting goroutine
	dropped      atomic.Int64
	sealed       atomic.Bool
}

// TraceID is the ID the sealed trace will carry.
func (a *Active) TraceID() uint64 { return a.id }

const workerIDBase = uint64(1) << 20

// phaseSpanID is the deterministic ID for phase ph's span.
func phaseSpanID(ph int) uint64 { return uint64(2 + ph) }

// spanID is worker w's i-th span ID. Worker blocks start at 1<<20, so
// phase IDs (2+ph) never collide for any realistic phase count.
func spanID(w, i int) uint64 { return uint64(w+1)*workerIDBase + uint64(i) }

// OnPhaseSpan records phase ph's span (n iterations, [startNS, endNS]).
// Called once per phase by the submitting goroutine after the barrier.
func (a *Active) OnPhaseSpan(ph, n int, startNS, endNS float64) {
	if len(a.phases) >= a.tracer.opts.MaxSpans {
		a.dropped.Add(1)
		return
	}
	a.phases = append(a.phases, Span{
		ID: phaseSpanID(ph), Parent: 1, Kind: KindPhase,
		Phase: ph, Proc: -1, Owner: -1, Hi: n,
		Start: startNS, End: endNS,
	})
}

// OnChunkSpan records one executed chunk. Called inline from worker
// proc's goroutine.
func (a *Active) OnChunkSpan(ph, proc, owner int, stolen bool, lo, hi int, startNS, endNS float64) {
	if proc < 0 || proc >= len(a.workers) {
		a.dropped.Add(1)
		return
	}
	w := &a.workers[proc]
	if len(w.spans) >= a.maxPerWorker {
		a.dropped.Add(1)
		return
	}
	s := Span{
		ID: spanID(proc, len(w.spans)), Parent: phaseSpanID(ph), Kind: KindChunk,
		Phase: ph, Proc: proc, Owner: owner, Stolen: stolen,
		Lo: lo, Hi: hi, Start: startNS, End: endNS,
	}
	if stolen && w.lastSteal != 0 {
		s.StealsFrom = w.lastSteal
		w.lastSteal = 0
	}
	w.spans = append(w.spans, s)
}

// OnStealSpan records one successful steal. Called inline from the
// thief's goroutine, immediately before the stolen chunk executes.
func (a *Active) OnStealSpan(ph, thief, victim, lo, hi int, startNS, endNS float64) {
	if thief < 0 || thief >= len(a.workers) {
		a.dropped.Add(1)
		return
	}
	w := &a.workers[thief]
	if len(w.spans) >= a.maxPerWorker {
		a.dropped.Add(1)
		return
	}
	s := Span{
		ID: spanID(thief, len(w.spans)), Parent: phaseSpanID(ph), Kind: KindSteal,
		Phase: ph, Proc: thief, Owner: victim,
		Lo: lo, Hi: hi, Start: startNS, End: endNS,
	}
	w.lastSteal = s.ID
	w.spans = append(w.spans, s)
}

// End seals the collection into a Trace, stores it in the tracer, and
// returns it. outcome is "ok", "cancelled" or "panicked". Must be
// called after the submission's barrier has drained (internal/pool
// calls it after Engine.Execute returns), so every worker buffer is
// quiescent and happens-before-ordered with this goroutine.
func (a *Active) End(outcome string) *Trace {
	tr := a.seal(outcome)
	a.tracer.store(tr)
	return tr
}

// Abandon discards the collection without storing a trace — the
// close path for submissions that were never executed (e.g. rejected
// by a closed engine).
func (a *Active) Abandon() {
	a.sealed.Store(true)
}

func (a *Active) seal(outcome string) *Trace {
	a.sealed.Store(true)
	total := 1 + len(a.phases)
	for w := range a.workers {
		total += len(a.workers[w].spans)
	}
	spans := make([]Span, 0, total)
	root := Span{ID: 1, Kind: KindSubmission, Phase: -1, Proc: -1, Owner: -1}
	var maxEnd float64
	for _, s := range a.phases {
		if s.End > maxEnd {
			maxEnd = s.End
		}
	}
	for w := range a.workers {
		for _, s := range a.workers[w].spans {
			if s.End > maxEnd {
				maxEnd = s.End
			}
		}
	}
	root.End = maxEnd
	spans = append(spans, root)
	spans = append(spans, a.phases...)
	for w := range a.workers {
		spans = append(spans, a.workers[w].spans...)
	}
	// Deterministic presentation order: by start time, span ID breaking
	// ties (IDs themselves are schedule-deterministic).
	sort.SliceStable(spans[1:], func(i, j int) bool {
		x, y := spans[1+i], spans[1+j]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		return x.ID < y.ID
	})
	return &Trace{
		TraceID:    a.id,
		Label:      a.info.Label,
		Scheduler:  a.info.Scheduler,
		Procs:      a.procs,
		Phases:     len(a.phases),
		Outcome:    outcome,
		DurationNS: maxEnd,
		Dropped:    a.dropped.Load(),
		Spans:      spans,
	}
}
