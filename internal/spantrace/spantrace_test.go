package spantrace_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forensics"
	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spantrace"
	"repro/internal/telemetry"
)

// liveTrace runs one phased AFS submission on a real pool with tracing
// attached and returns its sealed trace.
func liveTrace(t *testing.T, procs, phases, n int) *spantrace.Trace {
	t.Helper()
	px, err := pool.New(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	tracer := spantrace.NewTracer(spantrace.Options{})
	px.SetTracer(tracer)
	_, err = px.SubmitPhases(nil, core.Config{Spec: sched.SpecAFS()}, phases,
		func(int) int { return n },
		func(ph, i int) { _ = ph * i })
	if err != nil {
		t.Fatal(err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	return traces[0]
}

func TestLiveTraceStructure(t *testing.T) {
	const procs, phases, n = 4, 3, 1024
	tr := liveTrace(t, procs, phases, n)

	if tr.Outcome != "ok" || tr.Procs != procs || tr.Phases != phases {
		t.Fatalf("trace header: %+v", tr.Summary())
	}
	if tr.Spans[0].Kind != spantrace.KindSubmission || tr.Spans[0].ID != 1 {
		t.Fatalf("Spans[0] is not the root: %+v", tr.Spans[0])
	}
	if tr.DurationNS <= 0 {
		t.Fatalf("non-positive duration %v", tr.DurationNS)
	}

	// Every chunk parents to its phase span, lies inside the phase
	// window, and per phase the chunk ranges tile [0, n) exactly.
	covered := make(map[int][]bool)
	for ph := 0; ph < phases; ph++ {
		covered[ph] = make([]bool, n)
	}
	for _, s := range tr.Spans {
		switch s.Kind {
		case spantrace.KindChunk:
			phase := tr.Span(s.Parent)
			if phase == nil || phase.Kind != spantrace.KindPhase || phase.Phase != s.Phase {
				t.Fatalf("chunk %d has bad parent: %+v", s.ID, s)
			}
			if s.Start < phase.Start || s.End > phase.End {
				t.Fatalf("chunk %d outside its phase window: chunk [%v,%v] phase [%v,%v]",
					s.ID, s.Start, s.End, phase.Start, phase.End)
			}
			for i := s.Lo; i < s.Hi; i++ {
				if covered[s.Phase][i] {
					t.Fatalf("iteration %d of phase %d covered twice", i, s.Phase)
				}
				covered[s.Phase][i] = true
			}
			if s.Stolen && s.StealsFrom != 0 {
				steal := tr.Span(s.StealsFrom)
				if steal == nil || steal.Kind != spantrace.KindSteal {
					t.Fatalf("chunk %d steals_from %d is not a steal span", s.ID, s.StealsFrom)
				}
				if steal.Proc != s.Proc {
					t.Fatalf("steals-from edge crosses goroutines: chunk proc %d, steal proc %d",
						s.Proc, steal.Proc)
				}
				if steal.Lo != s.Lo || steal.Hi != s.Hi {
					t.Fatalf("steals-from range mismatch: chunk [%d,%d) steal [%d,%d)",
						s.Lo, s.Hi, steal.Lo, steal.Hi)
				}
			}
		case spantrace.KindSteal:
			if s.Owner < 0 || s.Owner >= procs || s.Owner == s.Proc {
				t.Fatalf("steal span with bad victim: %+v", s)
			}
		}
	}
	for ph := 0; ph < phases; ph++ {
		for i, ok := range covered[ph] {
			if !ok {
				t.Fatalf("iteration %d of phase %d not covered by any chunk span", i, ph)
			}
		}
	}

	// Presentation order is (Start, ID) after the root.
	for i := 2; i < len(tr.Spans); i++ {
		a, b := tr.Spans[i-1], tr.Spans[i]
		if a.Start > b.Start || (a.Start == b.Start && a.ID >= b.ID) {
			t.Fatalf("spans out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestForensicsRoundTrip(t *testing.T) {
	tr := liveTrace(t, 4, 2, 2048)

	var buf bytes.Buffer
	if err := tr.WriteForensics(&buf, "real", "ns"); err != nil {
		t.Fatal(err)
	}
	ft, err := forensics.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("forensics cannot read the span-trace export: %v", err)
	}
	a, err := forensics.Analyze(ft)
	if err != nil {
		t.Fatalf("forensics cannot analyze the span-trace export: %v", err)
	}
	if a.Meta.Procs != 4 || a.Steps != 2 {
		t.Fatalf("analysis header: procs=%d steps=%d", a.Meta.Procs, a.Steps)
	}
	// The attribution is a complete decomposition: every processor's
	// buckets sum to the common span, and the makespan matches the
	// trace's duration (both are the latest telemetry-clock timestamp).
	for _, pa := range a.Procs {
		sum := pa.Buckets.Compute + pa.Buckets.CacheReload +
			pa.Buckets.Interconnect + pa.Buckets.QueueWait + pa.Buckets.Idle
		if math.Abs(sum-pa.Span) > 1e-6*math.Max(1, pa.Span) {
			t.Fatalf("proc %d buckets sum to %v, span is %v", pa.Proc, sum, pa.Span)
		}
	}
	if math.Abs(a.Makespan-tr.DurationNS) > 1e-6*tr.DurationNS {
		t.Fatalf("makespan %v != trace duration %v", a.Makespan, tr.DurationNS)
	}
	// The event stream round-trips through the repo's invariant checker.
	if rep := telemetry.Check(ft.Events); !rep.OK() {
		t.Fatalf("exported stream fails tracecheck: %v", rep.Err())
	}
}

// simTrace runs one seeded simulation and rebuilds its span tree from
// the telemetry stream.
func simTrace(t *testing.T, seed uint64) *spantrace.Trace {
	t.Helper()
	m := machine.Iris()
	evs := telemetry.NewStream()
	pvs := telemetry.NewProvStream()
	prog := sim.Program{
		Name:  "det",
		Steps: 3,
		Step: func(int) sim.ParLoop {
			return sim.ParLoop{N: 128, Cost: func(i int) float64 { return 100 + float64(i%7)*30 }}
		},
	}
	_, err := sim.RunOpts(m, 4, sched.SpecAFS(), prog, sim.Options{
		Seed: seed, Events: evs, Prov: pvs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spantrace.FromTelemetry(spantrace.SubmissionInfo{
		Label: "det", Scheduler: "AFS", Procs: 4, Phases: 3,
	}, evs.Events(), pvs.Records())
}

// TestSimTraceDeterminism locks the simulator-substrate guarantee: at
// a fixed seed, two runs produce bit-identical span trees.
func TestSimTraceDeterminism(t *testing.T) {
	a := simTrace(t, 42)
	b := simTrace(t, 42)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different span trees:\n%s\n---\n%s", aj, bj)
	}
	if a.Chunks() == 0 {
		t.Fatal("sim trace has no chunk spans")
	}
	c := simTrace(t, 43)
	cj, _ := json.Marshal(c)
	if bytes.Equal(aj, cj) {
		t.Fatal("different seeds produced identical span trees (jitter not applied?)")
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range []spantrace.Kind{spantrace.KindSubmission, spantrace.KindPhase,
		spantrace.KindChunk, spantrace.KindSteal} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back spantrace.Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("kind %v round-trips to %v (%v)", k, back, err)
		}
	}
	var k spantrace.Kind
	if err := json.Unmarshal([]byte(`"warp"`), &k); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSpanCapDrops(t *testing.T) {
	tracer := spantrace.NewTracer(spantrace.Options{MaxSpans: 8})
	a := tracer.StartSubmission(spantrace.SubmissionInfo{Procs: 2, Phases: 1})
	for i := 0; i < 100; i++ {
		a.OnChunkSpan(0, i%2, i%2, false, i, i+1, float64(i), float64(i+1))
	}
	a.OnPhaseSpan(0, 100, 0, 100)
	tr := a.End("ok")
	if tr.Dropped == 0 {
		t.Fatal("cap exceeded without drops")
	}
	// 8 spans split across 2 workers: 4 each, plus root and phase.
	if got := len(tr.Spans); got != 1+1+8 {
		t.Fatalf("kept %d spans, want 10", got)
	}
}

func TestStoreEviction(t *testing.T) {
	tracer := spantrace.NewTracer(spantrace.Options{Store: 2})
	var ids []uint64
	for i := 0; i < 3; i++ {
		a := tracer.StartSubmission(spantrace.SubmissionInfo{Procs: 1, Phases: 1})
		a.OnPhaseSpan(0, 1, 0, 1)
		ids = append(ids, a.End("ok").TraceID)
	}
	if tracer.Get(ids[0]) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if tracer.Get(ids[1]) == nil || tracer.Get(ids[2]) == nil {
		t.Fatal("recent traces evicted")
	}
	if tracer.Evicted() != 1 {
		t.Fatalf("Evicted() = %d, want 1", tracer.Evicted())
	}
	got := tracer.Traces()
	if len(got) != 2 || got[0].TraceID != ids[2] || got[1].TraceID != ids[1] {
		t.Fatalf("Traces() order wrong: %v", []uint64{got[0].TraceID, got[1].TraceID})
	}
}

func TestAbandonStoresNothing(t *testing.T) {
	tracer := spantrace.NewTracer(spantrace.Options{})
	a := tracer.StartSubmission(spantrace.SubmissionInfo{Procs: 1, Phases: 1})
	a.Abandon()
	if len(tracer.Traces()) != 0 {
		t.Fatal("abandoned collection stored a trace")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tracer := spantrace.NewTracer(spantrace.Options{})
	h := spantrace.Handler(tracer)

	// Empty tracer: /traces serves an empty JSON list, not null.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if body := strings.TrimSpace(rec.Body.String()); body != "[]" {
		t.Fatalf("empty trace list = %q, want []", body)
	}

	a := tracer.StartSubmission(spantrace.SubmissionInfo{Scheduler: "AFS", Procs: 1, Phases: 1})
	a.OnChunkSpan(0, 0, 0, false, 0, 8, 0, 10)
	a.OnPhaseSpan(0, 8, 0, 10)
	id := a.End("ok").TraceID

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	var summaries []spantrace.TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &summaries); err != nil || len(summaries) != 1 {
		t.Fatalf("trace list: %v %v", err, rec.Body.String())
	}
	if summaries[0].TraceID != id || summaries[0].Chunks != 1 {
		t.Fatalf("summary: %+v", summaries[0])
	}

	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/trace?id=" + jsonNum(id), 200},
		{"/trace?id=" + jsonNum(id) + "&format=trace", 200},
		{"/trace?id=" + jsonNum(id) + "&format=gantt", 400},
		{"/trace?id=999999", 404},
		{"/trace?id=bogus", 400},
		{"/trace", 400},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
		if rec.Code != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.url, rec.Code, tc.code)
		}
	}

	// format=trace is readable by forensics.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id="+jsonNum(id)+"&format=trace", nil))
	if _, err := forensics.ReadTrace(rec.Body); err != nil {
		t.Fatalf("format=trace unreadable by forensics: %v", err)
	}
}

func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
