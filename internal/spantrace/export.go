package spantrace

import (
	"sort"

	"repro/internal/telemetry"
)

// Telemetry lowers a span tree back into the repo's canonical
// telemetry form — phase-boundary/exec/steal events plus one
// provenance record per chunk — so a single submission's trace feeds
// the standard forensics attribution pipeline (loopdoctor trace): the
// attribution buckets computed from these streams provably sum to the
// trace's duration, because forensics derives its per-processor span
// from exactly these windows.
func (t *Trace) Telemetry() ([]telemetry.Event, []telemetry.Prov) {
	var evs []telemetry.Event
	var pvs []telemetry.Prov
	for _, s := range t.Spans {
		switch s.Kind {
		case KindPhase:
			evs = append(evs, telemetry.Event{Kind: telemetry.KindPhaseBegin,
				Proc: -1, Victim: -1, Step: s.Phase, Hi: s.Hi,
				Start: s.Start, End: s.Start})
			evs = append(evs, telemetry.Event{Kind: telemetry.KindPhaseEnd,
				Proc: -1, Victim: -1, Step: s.Phase,
				Start: s.End, End: s.End})
		case KindChunk:
			evs = append(evs, telemetry.Event{Kind: telemetry.KindExec,
				Proc: s.Proc, Victim: -1, Step: s.Phase, Lo: s.Lo, Hi: s.Hi,
				Start: s.Start, End: s.End})
			pvs = append(pvs, telemetry.Prov{
				Step: s.Phase, Proc: s.Proc, Owner: s.Owner, Stolen: s.Stolen,
				Lo: s.Lo, Hi: s.Hi, Start: s.Start, End: s.End,
				Compute: s.End - s.Start,
			})
		case KindSteal:
			evs = append(evs, telemetry.Event{Kind: telemetry.KindSteal,
				Proc: s.Proc, Victim: s.Owner, Step: s.Phase, Lo: s.Lo, Hi: s.Hi,
				Start: s.Start, End: s.End})
		}
	}
	// Forensics and tracecheck expect streams ordered by (step, time) —
	// phase boundaries bracketing their chunks.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Step != evs[j].Step {
			return evs[i].Step < evs[j].Step
		}
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return kindRank(evs[i].Kind) < kindRank(evs[j].Kind)
	})
	return evs, pvs
}

// kindRank orders same-timestamp events: a phase begin precedes the
// work it brackets, a phase end follows it.
func kindRank(k telemetry.Kind) int {
	switch k {
	case telemetry.KindPhaseBegin:
		return 0
	case telemetry.KindPhaseEnd:
		return 2
	default:
		return 1
	}
}

// FromTelemetry rebuilds a span tree from a telemetry stream — the
// simulator-substrate entry point, where no hooks run but the event
// stream is deterministic. prov, when non-empty, supplies chunk
// ownership (owner queue, stolen flag); without it ownership is
// inferred from steal events (a chunk following its thief's steal of
// the same range is stolen). Span IDs follow the same deterministic
// scheme as live traces, so two runs at a fixed seed produce
// bit-identical trees.
func FromTelemetry(info SubmissionInfo, events []telemetry.Event, prov []telemetry.Prov) *Trace {
	procs := info.Procs
	for _, e := range events {
		if e.Proc+1 > procs {
			procs = e.Proc + 1
		}
	}
	if procs < 1 {
		procs = 1
	}
	type provKey struct {
		step, proc, lo, hi int
	}
	owners := make(map[provKey]telemetry.Prov, len(prov))
	for _, p := range prov {
		owners[provKey{p.Step, p.Proc, p.Lo, p.Hi}] = p
	}

	next := make([]int, procs) // per-worker local span index
	lastSteal := make([]uint64, procs)
	var spans []Span
	var maxEnd float64
	openPhase := make(map[int]telemetry.Event)
	phases := 0
	for _, e := range events {
		if e.End > maxEnd {
			maxEnd = e.End
		}
		switch e.Kind {
		case telemetry.KindPhaseBegin:
			openPhase[e.Step] = e
		case telemetry.KindPhaseEnd:
			begin, ok := openPhase[e.Step]
			if !ok {
				begin = telemetry.Event{Step: e.Step, Start: 0}
			}
			delete(openPhase, e.Step)
			spans = append(spans, Span{
				ID: phaseSpanID(e.Step), Parent: 1, Kind: KindPhase,
				Phase: e.Step, Proc: -1, Owner: -1, Hi: begin.Hi,
				Start: begin.Start, End: e.End,
			})
			phases++
		case telemetry.KindSteal:
			if e.Proc < 0 || e.Proc >= procs {
				continue
			}
			id := spanID(e.Proc, next[e.Proc])
			next[e.Proc]++
			spans = append(spans, Span{
				ID: id, Parent: phaseSpanID(e.Step), Kind: KindSteal,
				Phase: e.Step, Proc: e.Proc, Owner: e.Victim,
				Lo: e.Lo, Hi: e.Hi, Start: e.Start, End: e.End,
			})
			lastSteal[e.Proc] = id
		case telemetry.KindExec:
			if e.Proc < 0 || e.Proc >= procs {
				continue
			}
			s := Span{
				ID: spanID(e.Proc, next[e.Proc]), Parent: phaseSpanID(e.Step), Kind: KindChunk,
				Phase: e.Step, Proc: e.Proc, Owner: e.Proc,
				Lo: e.Lo, Hi: e.Hi, Start: e.Start, End: e.End,
			}
			next[e.Proc]++
			if p, ok := owners[provKey{e.Step, e.Proc, e.Lo, e.Hi}]; ok {
				s.Owner, s.Stolen = p.Owner, p.Stolen
			} else if lastSteal[e.Proc] != 0 {
				s.Stolen = true
				s.Owner = -1
			}
			if s.Stolen && lastSteal[e.Proc] != 0 {
				s.StealsFrom = lastSteal[e.Proc]
				lastSteal[e.Proc] = 0
			}
			spans = append(spans, s)
		}
	}
	// Any phase left open (aborted mid-phase) still gets a span.
	for step, begin := range openPhase {
		spans = append(spans, Span{
			ID: phaseSpanID(step), Parent: 1, Kind: KindPhase,
			Phase: step, Proc: -1, Owner: -1, Hi: begin.Hi,
			Start: begin.Start, End: maxEnd,
		})
		phases++
	}

	all := make([]Span, 0, len(spans)+1)
	all = append(all, Span{ID: 1, Kind: KindSubmission, Phase: -1, Proc: -1, Owner: -1, End: maxEnd})
	all = append(all, spans...)
	sort.SliceStable(all[1:], func(i, j int) bool {
		x, y := all[1+i], all[1+j]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		return x.ID < y.ID
	})
	return &Trace{
		Label:      info.Label,
		Scheduler:  info.Scheduler,
		Procs:      procs,
		Phases:     phases,
		Outcome:    "ok",
		DurationNS: maxEnd,
		Spans:      all,
	}
}
