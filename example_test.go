package repro_test

import (
	"fmt"

	"repro"
)

// ExampleParallelFor shows a basic parallel loop under affinity
// scheduling with sync-op accounting.
func ExampleParallelFor() {
	sum := make([]int, 1000)
	stats, err := repro.ParallelFor(len(sum), func(i int) {
		sum[i] = i * i
	}, repro.WithProcs(4), repro.WithScheduler("afs"))
	if err != nil {
		panic(err)
	}
	fmt.Println("iterations:", stats.Iterations)
	fmt.Println("central queue ops:", stats.CentralOps)
	// Output:
	// iterations: 1000
	// central queue ops: 0
}

// ExampleForPhases shows the paper's canonical loop shape: a parallel
// loop nested within a sequential loop, where AFS re-places the same
// iterations on the same worker every phase.
func ExampleForPhases() {
	grid := make([]float64, 256)
	stats, err := repro.ForPhases(8,
		func(phase int) int { return len(grid) },
		func(phase, i int) { grid[i] += 1 },
		repro.WithProcs(4), repro.WithSpec(repro.AFS()))
	if err != nil {
		panic(err)
	}
	fmt.Println("phases:", stats.Phases)
	fmt.Println("grid[0]:", grid[0])
	// Output:
	// phases: 8
	// grid[0]: 8
}

// ExampleSimulate reproduces the paper's headline effect on the
// simulated SGI Iris: a data-reusing phased loop is far cheaper under
// affinity scheduling than under self-scheduling, because iterations
// stay with their cached rows.
func ExampleSimulate() {
	m := repro.Iris()
	program := repro.SimProgram{
		Name:  "reuse",
		Steps: 4,
		Step: func(int) repro.SimLoop {
			return repro.SimLoop{
				N:    64,
				Cost: func(int) float64 { return 2000 },
				Touches: func(i int, visit func(repro.SimTouch)) {
					visit(repro.SimTouch{ID: uint64(i), Bytes: 4096, Write: true})
				},
			}
		},
	}
	afs, _ := repro.Simulate(m, 8, repro.AFS(), program)
	ss, _ := repro.Simulate(m, 8, repro.SelfScheduling(), program)
	fmt.Println("AFS misses fewer times than SS:", afs.Misses < ss.Misses/2)
	fmt.Println("AFS faster:", afs.Seconds < ss.Seconds)
	// Output:
	// AFS misses fewer times than SS: true
	// AFS faster: true
}

// ExampleSchedulerByName resolves parameterised algorithm names.
func ExampleSchedulerByName() {
	s, _ := repro.SchedulerByName("afs(k=2)")
	fmt.Println(s.Name)
	s, _ = repro.SchedulerByName("chunk(64)")
	fmt.Println(s.Name)
	// Output:
	// AFS(k=2)
	// CHUNK(64)
}
