// Package serveclient is the Go client for a loopserved instance: it
// submits serializable job specs (repro.JobSpec) over HTTP/JSON and
// maps the service's admission verdicts back onto typed errors — a
// *ShedError carrying the server's Retry-After for 429, a
// *RemoteError with status and message for everything else — so
// callers can implement quota-respecting backoff without parsing
// response bodies.
//
// The wire contract is internal/serve.NewHandler; kernels are named
// server-side registrations (loop bodies never cross the wire), so a
// client submits {kernel, params, scheduler, procs, tenant} and gets
// back stats and a reproducible checksum.
package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
)

// Client talks to one loopserved base URL. The zero value is not
// usable; create with New.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for a server base URL (e.g.
// "http://localhost:8093"). hc nil means http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// JobResult is one completed submission as reported by the server.
type JobResult struct {
	Tenant        string  `json:"tenant"`
	Scheduler     string  `json:"scheduler"`
	Procs         int     `json:"procs"`
	Shard         string  `json:"shard"`
	WaitNS        int64   `json:"wait_ns"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	Phases        int     `json:"phases"`
	Iterations    int64   `json:"iterations"`
	Steals        int64   `json:"steals"`
	MigratedIters int64   `json:"migrated_iters"`
	Checksum      float64 `json:"checksum"`
}

// KernelInfo is one registered kernel.
type KernelInfo struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Defaults    repro.JobParams `json:"defaults"`
}

// TenantStatus mirrors the server's per-tenant admission state.
type TenantStatus struct {
	Tenant string  `json:"tenant"`
	Weight float64 `json:"weight"`
	Rate   float64 `json:"rate_per_sec"`
	Burst  float64 `json:"burst"`
	Tokens float64 `json:"tokens"`
}

// ShardStatus mirrors one executor shard.
type ShardStatus struct {
	Shard       string `json:"shard"`
	Scheduler   string `json:"scheduler"`
	Procs       int    `json:"procs"`
	Submissions int64  `json:"submissions"`
}

// Status mirrors the server's /status snapshot.
type Status struct {
	Queued     int            `json:"queued"`
	QueueLimit int            `json:"queue_limit"`
	Dispatched int64          `json:"dispatched"`
	Closed     bool           `json:"closed"`
	Tenants    []TenantStatus `json:"tenants,omitempty"`
	Shards     []ShardStatus  `json:"shards,omitempty"`
}

// ShedError is a 429: the server refused the job under overload
// protection and the client should wait RetryAfter before resubmitting.
type ShedError struct {
	// Reason is the server's verdict: "quota" or "backlog".
	Reason     string
	RetryAfter time.Duration
	Message    string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serveclient: shed (%s), retry after %v: %s", e.Reason, e.RetryAfter, e.Message)
}

// RemoteError is any other non-2xx verdict: 400 invalid spec, 503
// server draining, 500 kernel panic.
type RemoteError struct {
	Status  int
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serveclient: server returned %d: %s", e.Status, e.Message)
}

// errorBody is the server's JSON error shape.
type errorBody struct {
	Error          string  `json:"error"`
	Reason         string  `json:"reason"`
	RetryAfterSecs float64 `json:"retry_after_seconds"`
}

// Submit posts one job and blocks until the server reports completion
// or a verdict. Overload returns *ShedError; any other refusal returns
// *RemoteError.
func (c *Client) Submit(ctx context.Context, spec repro.JobSpec) (JobResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobResult{}, fmt.Errorf("serveclient: encoding spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return JobResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobResult{}, decodeError(resp)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return JobResult{}, fmt.Errorf("serveclient: decoding result: %w", err)
	}
	return jr, nil
}

// Kernels lists the server's registered kernels.
func (c *Client) Kernels(ctx context.Context) ([]KernelInfo, error) {
	var out []KernelInfo
	return out, c.get(ctx, "/kernels", &out)
}

// Status fetches the server's admission snapshot.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var out Status
	return out, c.get(ctx, "/status", &out)
}

// Healthz reports nil while the server is accepting jobs.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/healthz", &struct {
		OK bool `json:"ok"`
	}{})
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError maps a non-200 response to the typed error taxonomy.
// The Retry-After header is authoritative for backoff when present;
// the JSON body's fractional seconds refine it.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var eb errorBody
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Duration(eb.RetryAfterSecs * float64(time.Second))
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && retry <= 0 {
			retry = time.Duration(secs) * time.Second
		}
		return &ShedError{Reason: eb.Reason, RetryAfter: retry, Message: msg}
	}
	return &RemoteError{Status: resp.StatusCode, Message: msg}
}
