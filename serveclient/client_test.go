package serveclient_test

// End-to-end contract test: a real Server behind its real handler,
// driven through the public client — the same composition loopserved
// serves and the CI smoke test scrapes.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/serveclient"
)

func TestClientRoundTrip(t *testing.T) {
	srv, err := repro.NewServer(repro.ServerOptions{
		Procs: 2,
		Tenants: map[string]repro.ServerTenant{
			"metered": {Rate: 0.5, Burst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(repro.ServeHandler(srv, "client-test"))
	defer ts.Close()
	c := serveclient.New(ts.URL, nil)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	kernels, err := c.Kernels(ctx)
	if err != nil || len(kernels) == 0 {
		t.Fatalf("kernels = %d, %v", len(kernels), err)
	}

	spec := repro.JobSpec{
		Kernel:    "gauss",
		Params:    repro.JobParams{N: 32},
		Scheduler: "gss",
		Procs:     2,
	}
	res, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Phases != 31 || res.Checksum == 0 || res.Shard == "" {
		t.Fatalf("result = %+v", res)
	}
	res2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Checksum != res.Checksum {
		t.Fatalf("checksum not reproducible over the wire: %v vs %v", res.Checksum, res2.Checksum)
	}

	// Over quota: the typed shed error carries the server's backoff.
	metered := repro.JobSpec{Kernel: "spin", Params: repro.JobParams{N: 64, Phases: 1, Work: 1}, Procs: 2, Tenant: "metered"}
	if _, err := c.Submit(ctx, metered); err != nil {
		t.Fatalf("metered burst: %v", err)
	}
	_, err = c.Submit(ctx, metered)
	var shed *serveclient.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-quota = %v, want *ShedError", err)
	}
	if shed.Reason != "quota" || shed.RetryAfter <= 0 {
		t.Fatalf("shed = %+v", shed)
	}

	// Invalid spec: a RemoteError naming the offending field.
	_, err = c.Submit(ctx, repro.JobSpec{Kernel: "spin", Procs: -1})
	var rem *serveclient.RemoteError
	if !errors.As(err, &rem) || rem.Status != 400 {
		t.Fatalf("invalid spec = %v, want *RemoteError 400", err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dispatched < 3 || len(st.Shards) == 0 {
		t.Fatalf("status = %+v", st)
	}

	srv.Close()
	_, err = c.Submit(ctx, spec)
	if !errors.As(err, &rem) || rem.Status != 503 {
		t.Fatalf("submit after close = %v, want *RemoteError 503", err)
	}
}
