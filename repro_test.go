package repro_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

func TestParallelForDefaults(t *testing.T) {
	var count int64
	st, err := repro.ParallelFor(1000, func(i int) { atomic.AddInt64(&count, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if count != 1000 || st.Iterations != 1000 {
		t.Errorf("count=%d stats=%d", count, st.Iterations)
	}
}

func TestParallelForEverySchedulerByName(t *testing.T) {
	names := []string{
		"static", "best-static", "ss", "chunk(8)", "gss", "gss(k=2)",
		"factoring", "trapezoid", "tapering", "a-gss", "afs", "afs(k=2)",
		"afs-le", "mod-factoring",
	}
	for _, name := range names {
		var count int64
		_, err := repro.ParallelFor(500, func(int) { atomic.AddInt64(&count, 1) },
			repro.WithScheduler(name), repro.WithProcs(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count != 500 {
			t.Errorf("%s executed %d iterations", name, count)
		}
		count = 0
	}
}

func TestWithSchedulerUnknown(t *testing.T) {
	_, err := repro.ParallelFor(10, func(int) {}, repro.WithScheduler("quantum"))
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestForPhases(t *testing.T) {
	var count int64
	st, err := repro.ForPhases(10,
		func(ph int) int { return 100 },
		func(ph, i int) { atomic.AddInt64(&count, 1) },
		repro.WithSpec(repro.AFS()), repro.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Errorf("count = %d", count)
	}
	if st.Phases != 10 {
		t.Errorf("phases = %d", st.Phases)
	}
}

func TestWithCostHintAndDelay(t *testing.T) {
	var count int64
	_, err := repro.ForPhases(2,
		func(int) int { return 200 },
		func(_, i int) { atomic.AddInt64(&count, 1) },
		repro.WithSpec(repro.BestStatic()),
		repro.WithCostHint(func(ph, i int) float64 { return float64(i + 1) }),
		repro.WithStartDelay(time.Millisecond),
		repro.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if count != 400 {
		t.Errorf("count = %d", count)
	}
}

func TestSchedulerRegistry(t *testing.T) {
	if len(repro.Schedulers()) < 10 {
		t.Error("expected a full algorithm registry")
	}
	s, err := repro.SchedulerByName("AFS(k=3)")
	if err != nil || s.Name != "AFS(k=3)" {
		t.Errorf("SchedulerByName: %v %v", s.Name, err)
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	m, err := repro.MachineByName("iris")
	if err != nil {
		t.Fatal(err)
	}
	prog := repro.SimProgram{
		Name:  "api",
		Steps: 2,
		Step: func(int) repro.SimLoop {
			return repro.SimLoop{
				N:    100,
				Cost: func(int) float64 { return 50 },
			}
		},
	}
	res, err := repro.Simulate(m, 4, repro.AFS(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Procs != 4 || res.Machine != "Iris" {
		t.Errorf("result %+v", res)
	}
	res2, err := repro.Simulate(m, 4, repro.GSS(), prog, repro.WithSimStartDelay(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles <= res.Cycles {
		t.Error("delayed GSS run should be slower than undelayed AFS run here")
	}
}

func TestMachinePresets(t *testing.T) {
	for _, m := range []*repro.Machine{repro.Iris(), repro.ButterflyI(), repro.Symmetry(), repro.KSR1(), repro.IdealMachine(4)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := repro.MachineByName("pdp11"); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestAffinityEndToEnd is the library's headline behaviour, exercised
// through the public API only: on a simulated bus machine, AFS beats
// GSS on a data-reusing phased loop.
func TestAffinityEndToEnd(t *testing.T) {
	m := repro.Iris()
	build := func() repro.SimProgram {
		return repro.SimProgram{
			Name:  "reuse",
			Steps: 6,
			Step: func(int) repro.SimLoop {
				return repro.SimLoop{
					N:    256,
					Cost: func(int) float64 { return 2000 },
					Touches: func(i int, visit func(t repro.SimTouch)) {
						visit(repro.SimTouch{ID: uint64(i), Bytes: 4096, Write: true})
					},
				}
			},
		}
	}
	afs, err := repro.Simulate(m, 8, repro.AFS(), build())
	if err != nil {
		t.Fatal(err)
	}
	gss, err := repro.Simulate(m, 8, repro.GSS(), build())
	if err != nil {
		t.Fatal(err)
	}
	if gss.Seconds < afs.Seconds*1.2 {
		t.Errorf("affinity advantage missing: AFS %.4fs vs GSS %.4fs", afs.Seconds, gss.Seconds)
	}
}

func TestWithGrain(t *testing.T) {
	var count int64
	st, err := repro.ParallelFor(50000, func(int) { atomic.AddInt64(&count, 1) },
		repro.WithScheduler("ss"), repro.WithProcs(4), repro.WithGrain(256))
	if err != nil {
		t.Fatal(err)
	}
	if count != 50000 {
		t.Errorf("count = %d", count)
	}
	if st.CentralOps > 50000/256+8 {
		t.Errorf("grain ignored: %d central ops", st.CentralOps)
	}
}

// TestExecutorPublicAPI: the persistent executor serves a stream of
// submissions with per-submission options, isolated stats, contained
// panics and per-submission cancellation.
func TestExecutorPublicAPI(t *testing.T) {
	ex, err := repro.NewExecutor(repro.WithProcs(4), repro.WithScheduler("afs"))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ex.Procs() != 4 {
		t.Fatalf("Procs = %d", ex.Procs())
	}

	// A stream of loops, some overriding the default scheduler.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 1000 + g*100
			var count int64
			opts := []repro.Option{}
			if g%2 == 1 {
				opts = append(opts, repro.WithScheduler("gss"))
			}
			st, err := ex.Submit(context.Background(), n,
				func(int) { atomic.AddInt64(&count, 1) }, opts...)
			if err != nil {
				t.Errorf("submitter %d: %v", g, err)
				return
			}
			if count != int64(n) || st.Iterations != int64(n) {
				t.Errorf("submitter %d: count=%d stats=%d want %d", g, count, st.Iterations, n)
			}
		}(g)
	}
	wg.Wait()

	// Panic containment: the error is typed, later submissions work.
	_, err = ex.Submit(context.Background(), 1000, func(i int) {
		if i == 500 {
			panic("boom")
		}
	})
	var pe *repro.ExecutorPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ExecutorPanicError", err)
	}

	// Cancellation mid-loop, then a clean follow-up submission.
	ctx, cancel := context.WithCancel(context.Background())
	var count int64
	_, err = ex.SubmitPhases(ctx, 20, func(int) int { return 5000 },
		func(_, _ int) {
			if atomic.AddInt64(&count, 1) == 100 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission: err = %v", err)
	}
	var after int64
	if _, err := ex.Submit(context.Background(), 2000,
		func(int) { atomic.AddInt64(&after, 1) }); err != nil {
		t.Fatal(err)
	}
	if after != 2000 {
		t.Errorf("post-cancel submission executed %d, want 2000", after)
	}

	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Submit(context.Background(), 10, func(int) {}); !errors.Is(err, repro.ErrExecutorClosed) {
		t.Errorf("submit after close: err = %v, want ErrExecutorClosed", err)
	}
}

// TestParallelForCtx: the context-aware one-shot variants cancel at
// chunk granularity and surface ctx's error.
func TestParallelForCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count int64
	_, err := repro.ParallelForCtx(ctx, 200000, func(i int) {
		if atomic.AddInt64(&count, 1) == 50 {
			cancel()
		}
		time.Sleep(time.Microsecond)
	}, repro.WithProcs(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&count) >= 200000 {
		t.Error("cancelled loop ran to completion")
	}

	// An un-cancelled context behaves exactly like ParallelFor.
	var full int64
	st, err := repro.ForPhasesCtx(context.Background(), 3,
		func(int) int { return 500 },
		func(_, _ int) { atomic.AddInt64(&full, 1) },
		repro.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	if full != 1500 || st.Phases != 3 {
		t.Errorf("count=%d phases=%d", full, st.Phases)
	}
}

// TestSimulateVariadicOptions: the redesigned Simulate takes options
// directly; applying a whole SimOptions struct via WithSimOptions
// (the migration path from the removed SimulateOpts) must agree
// bit-for-bit.
func TestSimulateVariadicOptions(t *testing.T) {
	m := repro.Iris()
	build := func() repro.SimProgram {
		return repro.SimProgram{
			Name:  "opts",
			Steps: 3,
			Step: func(int) repro.SimLoop {
				return repro.SimLoop{N: 128, Cost: func(int) float64 { return 100 }}
			},
		}
	}
	tr := repro.NewTrace(4)
	reg := repro.NewMetricsRegistry()
	res, err := repro.Simulate(m, 4, repro.AFS(), build(),
		repro.WithSimSeed(7), repro.WithSimTrace(tr), repro.WithSimMetrics(reg),
		repro.WithSimStartDelay(1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	old, err := repro.Simulate(m, 4, repro.AFS(), build(), repro.WithSimOptions(repro.SimOptions{
		Seed: 7, StartDelay: []float64{1000},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if old.Cycles != res.Cycles {
		t.Errorf("WithSimOptions diverged from per-field options: %f vs %f cycles", old.Cycles, res.Cycles)
	}
	if len(reg.Series()) == 0 {
		t.Error("WithSimMetrics recorded no series")
	}
}

func TestRandomizedStealPolicies(t *testing.T) {
	for _, name := range []string{"afs-rand", "afs-p2"} {
		counts := make([]int32, 5000)
		_, err := repro.ParallelFor(len(counts), func(i int) {
			atomic.AddInt32(&counts[i], 1)
			if i < 100 {
				for s := 0; s < 2000; s++ {
					_ = s * s
				}
			}
		}, repro.WithScheduler(name), repro.WithProcs(8))
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%s: iteration %d ran %d times", name, i, c)
			}
		}
	}
}

// TestOptionErrorsNameOption: invalid option values surface as errors
// naming the offending option, internal/cli.FirstError style.
func TestOptionErrorsNameOption(t *testing.T) {
	cases := []struct {
		opt  repro.Option
		want string
	}{
		{repro.WithProcs(0), "WithProcs"},
		{repro.WithProcs(-3), "WithProcs"},
		{repro.WithScheduler("not-a-scheduler"), "WithScheduler"},
		{repro.WithGrain(-1), "WithGrain"},
		{repro.WithStartDelay(-time.Second), "WithStartDelay"},
		{repro.WithQueueDepthSampling(-time.Millisecond), "WithQueueDepthSampling"},
		{repro.WithJobSpec(repro.JobSpec{Kernel: "not-a-kernel"}), "WithJobSpec"},
		{repro.WithJobSpec(repro.JobSpec{Procs: -1}), "jobspec.procs"},
	}
	for _, c := range cases {
		_, err := repro.ParallelFor(8, func(int) {}, c.opt)
		if err == nil {
			t.Errorf("want error naming %q, got nil", c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not name %q", err, c.want)
		}
	}
	// The first offending option wins when several fail.
	_, err := repro.ParallelFor(8, func(int) {}, repro.WithGrain(-1), repro.WithProcs(0))
	if err == nil || !strings.Contains(err.Error(), "WithGrain") {
		t.Errorf("first-error semantics: got %v, want WithGrain error", err)
	}
}

// TestSubmitJob: a serializable JobSpec executes a registered kernel
// on the pool — the wire-submission path, run locally — and produces
// the kernel's serial checksum.
func TestSubmitJob(t *testing.T) {
	ex, err := repro.NewExecutor(repro.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	spec := repro.JobSpec{
		Kernel:    "gauss",
		Params:    repro.JobParams{N: 48},
		Scheduler: "afs",
		Tenant:    "local",
	}
	st, sum, err := ex.SubmitJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phases != 47 || st.Iterations == 0 {
		t.Fatalf("stats %+v, want 47 phases", st)
	}
	if sum == 0 {
		t.Fatal("gauss checksum is zero")
	}
	// Same spec over a JSON round-trip: identical work, identical sum.
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back repro.JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	_, sum2, err := ex.SubmitJob(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sum {
		t.Fatalf("checksum drifted over the wire: %v vs %v", sum, sum2)
	}
	if _, _, err := ex.SubmitJob(context.Background(), repro.JobSpec{}); err == nil {
		t.Fatal("SubmitJob without a kernel must fail")
	}
	if len(repro.KernelNames()) == 0 {
		t.Fatal("no kernels registered")
	}
}
