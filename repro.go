// Package repro is a Go reproduction of Markatos & LeBlanc, "Using
// Processor Affinity in Loop Scheduling on Shared-Memory
// Multiprocessors" (Supercomputing 1992).
//
// It provides:
//
//   - a real parallel-for runtime implementing every loop scheduling
//     algorithm the paper studies — static, self-scheduling, fixed
//     chunking, guided self-scheduling, factoring, trapezoid
//     self-scheduling, modified factoring, and affinity scheduling
//     (AFS), plus the tapering / adaptive-GSS / AFS-LE extensions —
//     over goroutine workers with per-worker work queues and
//     most-loaded stealing (ParallelFor, ForPhases);
//   - a deterministic discrete-event simulator of the paper's four
//     machines (SGI Iris, BBN Butterfly I, Sequent Symmetry, KSR-1)
//     that regenerates every figure and table in the paper's evaluation
//     (Simulate; see cmd/paperfigs and EXPERIMENTS.md).
//
// Quick start:
//
//	stats, err := repro.ParallelFor(1_000_000, func(i int) { work(i) },
//	    repro.WithScheduler("afs"), repro.WithProcs(8))
package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/livemetrics"
	"repro/internal/machine"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/spantrace"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Scheduler identifies a loop scheduling algorithm configuration.
type Scheduler = sched.Spec

// Scheduler constructors for the paper's algorithms and extensions.
var (
	// Static divides iterations into P contiguous blocks up front.
	Static = sched.SpecStatic
	// BestStatic is the oracle static baseline (§4.1); supply per-
	// iteration costs via WithCostHint.
	BestStatic = sched.SpecBestStatic
	// SelfScheduling takes one iteration per central-queue access.
	SelfScheduling = sched.SpecSS
	// Chunk takes K iterations per access.
	Chunk = sched.SpecChunk
	// GSS is guided self-scheduling: ⌈R/P⌉ of the remaining R.
	GSS = sched.SpecGSS
	// GSSK is GSS taking ⌈R/(kP)⌉ (the paper's §4.3 variant).
	GSSK = sched.SpecGSSK
	// Factoring allocates phases of P equal chunks covering half the
	// remainder.
	Factoring = sched.SpecFactoring
	// Trapezoid decreases chunk sizes linearly from ⌈N/2P⌉.
	Trapezoid = sched.SpecTrapezoid
	// Tapering shrinks GSS chunks by the iteration-time variance
	// (extension).
	Tapering = sched.SpecTapering
	// AdaptiveGSS backs off chunk sizes under queue contention
	// (extension).
	AdaptiveGSS = sched.SpecAdaptiveGSS
	// AFS is affinity scheduling with k = P (the paper's default).
	AFS = sched.SpecAFS
	// AFSK is affinity scheduling with an explicit local divisor k.
	AFSK = sched.SpecAFSK
	// AFSLE assigns re-executions to the last executing processor
	// (extension discussed in §4.3).
	AFSLE = sched.SpecAFSLE
	// AFSRandom steals from a random victim instead of scanning for the
	// most loaded queue (the §2.2 scalability extension).
	AFSRandom = sched.SpecAFSRandom
	// AFSPow2 steals from the longer of two random victims.
	AFSPow2 = sched.SpecAFSPow2
	// ModFactoring is the affinity-preserving factoring of §2.3.
	ModFactoring = sched.SpecModFactoring
)

// SchedulerByName resolves names like "afs", "gss", "chunk(8)",
// "afs(k=2)" (case-insensitive).
func SchedulerByName(name string) (Scheduler, error) { return sched.ByName(name) }

// Schedulers returns every available algorithm with default parameters.
func Schedulers() []Scheduler { return sched.AllSpecs() }

// RunStats reports a real execution's scheduling activity.
type RunStats = core.Stats

// JobSpec is the canonical, serializable description of one loop job:
// scheduler, worker count, grain, kernel name + params, tenant,
// priority and deadline — everything a submission needs except the
// loop body itself. The variadic options below lower onto a JobSpec,
// internal/serve accepts one as the HTTP request body, and the
// serveclient package marshals the same struct on the client side, so
// local and remote submission share one request shape.
type JobSpec = job.Spec

// JobParams sizes a JobSpec's named kernel (zero fields take the
// kernel's defaults).
type JobParams = job.Params

// KernelNames lists the registered loop kernels a JobSpec may name,
// sorted (see Executor.SubmitJob and cmd/loopserved).
func KernelNames() []string { return job.Names() }

// Option configures ParallelFor / ForPhases / Executor submissions.
// The serializable settings (scheduler, procs, grain, tenant, ...)
// lower onto the config's JobSpec; the remaining options attach the
// process-local machinery a wire format cannot carry (sinks, hooks,
// context, cost models).
type Option func(*config)

type config struct {
	// job is the serializable half of the submission; WithProcs,
	// WithScheduler, WithGrain, WithTenant and WithJobSpec write here.
	job JobSpec
	// spec, when set, is WithSpec's fully-parameterised Scheduler value
	// — the non-serializable escape hatch (e.g. Tapering with a custom
	// CV has no ByName spelling). It overrides job.Scheduler at
	// lowering.
	spec *Scheduler
	// Process-local attachments, applied on top of the lowered config.
	ctx             context.Context
	costHint        func(ph, i int) float64
	startDelay      []time.Duration
	events          EventSink
	metrics         *MetricsRegistry
	prov            ProvenanceSink
	queueDepthEvery time.Duration
	obs             *livemetrics.Plane
	tracer          *spantrace.Tracer

	// cc is the lowered core config, resolved once by buildConfig.
	cc  core.Config
	err error
}

// fail records the first option error (cli.FirstError semantics: one
// submission, one diagnostic, naming the offending option).
func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// optionErr names the offending option the way internal/cli names a
// flag: "WithProcs: procs must be ≥ 1, got 0".
func optionErr(opt, format string, args ...any) error {
	return fmt.Errorf("%s: %s", opt, fmt.Sprintf(format, args...))
}

// WithProcs sets the number of worker goroutines (p ≥ 1).
func WithProcs(p int) Option {
	return func(c *config) {
		if p < 1 {
			c.fail(optionErr("WithProcs", "procs must be ≥ 1, got %d", p))
			return
		}
		c.job.Procs = p
	}
}

// WithSpec selects the scheduling algorithm from a Scheduler value.
// For algorithms with a ByName spelling prefer WithScheduler — it
// keeps the submission fully serializable; WithSpec also accepts
// parameterisations that have no name (a custom Tapering CV).
func WithSpec(s Scheduler) Option {
	return func(c *config) {
		c.spec = &s
		if _, err := sched.ByName(s.Name); err == nil {
			c.job.Scheduler = s.Name
		}
	}
}

// WithScheduler selects the scheduling algorithm by name ("afs",
// "gss", "chunk(8)", ...); unknown names surface as an error naming
// this option from ParallelFor/ForPhases/Submit.
func WithScheduler(name string) Option {
	return func(c *config) {
		if _, err := sched.ByName(name); err != nil {
			c.fail(optionErr("WithScheduler", "%v", err))
			return
		}
		c.job.Scheduler = name
		c.spec = nil
	}
}

// WithTenant names the submitting principal for fair queuing and
// quota accounting — a pass-through for local executors, the admission
// identity when the JobSpec is submitted to a loopserved instance.
func WithTenant(name string) Option {
	return func(c *config) { c.job.Tenant = name }
}

// WithJobSpec replaces the whole serializable half of the submission
// with s — the bridge from wire jobs to local execution (serve uses it
// after decoding a request; see also Executor.SubmitJob). Options
// applied after it override individual fields; options applied before
// it (including NewExecutor defaults) are superseded. Validation
// errors name the offending JobSpec field.
func WithJobSpec(s JobSpec) Option {
	return func(c *config) {
		if err := s.Validate(); err != nil {
			c.fail(optionErr("WithJobSpec", "%v", err))
			return
		}
		c.job = s
		c.spec = nil
	}
}

// WithCostHint supplies per-iteration cost estimates (phase, index) for
// the BEST-STATIC oracle partitioner.
func WithCostHint(hint func(ph, i int) float64) Option {
	return func(c *config) { c.costHint = hint }
}

// WithStartDelay delays each worker's start by the given amount,
// reproducing the §4.5 non-uniform processor arrival experiments.
func WithStartDelay(delays ...time.Duration) Option {
	return func(c *config) {
		for _, d := range delays {
			if d < 0 {
				c.fail(optionErr("WithStartDelay", "delays must be ≥ 0, got %v", d))
				return
			}
		}
		c.startDelay = delays
	}
}

// WithGrain sets the minimum iterations handed out per queue operation
// (min ≥ 0; 0 or 1 means no coarsening), for loops whose bodies are
// too cheap to justify per-chunk dispatch.
func WithGrain(min int) Option {
	return func(c *config) {
		if min < 0 {
			c.fail(optionErr("WithGrain", "grain must be ≥ 0, got %d", min))
			return
		}
		c.job.Grain = min
	}
}

// WithEvents attaches a telemetry sink receiving the structured event
// stream (exec / steal / queue-wait / phase-boundary events with
// nanosecond timestamps). The sink must be safe for concurrent use —
// NewEventStream returns a suitable one. With no sink the hot path
// pays a single nil check.
func WithEvents(s EventSink) Option {
	return func(c *config) { c.events = s }
}

// WithMetrics attaches a metrics registry accumulating counters and
// histograms (chunk sizes, steal latencies, queue waits) with a
// time-series snapshot taken at every phase barrier.
func WithMetrics(r *MetricsRegistry) Option {
	return func(c *config) { c.metrics = r }
}

// WithProvenance attaches a provenance sink receiving one record per
// executed chunk (owner queue, stolen flag, measured dispatch wait) —
// the raw material for internal/forensics slowdown attribution.
// NewProvenanceStream returns a suitable concurrent-safe sink.
func WithProvenance(s ProvenanceSink) Option {
	return func(c *config) { c.prov = s }
}

// WithQueueDepthSampling samples every work queue's backlog at the
// given interval into RunStats.QueueDepthSamples — the real runtime's
// version of the simulator's per-queue imbalance signal.
func WithQueueDepthSampling(every time.Duration) Option {
	return func(c *config) {
		if every < 0 {
			c.fail(optionErr("WithQueueDepthSampling", "interval must be ≥ 0, got %v", every))
			return
		}
		c.queueDepthEvery = every
	}
}

// Observability is a live observability plane: lock-cheap rolling
// latency quantiles (per submission and per chunk), per-worker
// utilization / steal-rate / queue-depth / affinity-hit gauges, and a
// bounded flight recorder of recent telemetry that freezes
// automatically on panic or cancellation. Create with NewObservability,
// attach with WithObservability, scrape with Snapshot or serve over
// HTTP with ObservabilityHandler (see also cmd/engineview), and Close
// when done.
type Observability = livemetrics.Plane

// ObservabilityOptions sizes a plane's instruments (rolling window,
// flight-ring capacities, gauge sampling interval). The zero value
// gives usable defaults.
type ObservabilityOptions = livemetrics.Options

// ObservabilitySnapshot is one coherent scrape of a plane.
type ObservabilitySnapshot = livemetrics.Snapshot

// NewObservability creates a live observability plane.
func NewObservability(opts ObservabilityOptions) *Observability {
	return livemetrics.New(opts)
}

// WithObservability attaches a plane. At NewExecutor it observes every
// subsequent submission (latencies, hot-path hooks, flight recorder,
// live queue depths); on a one-shot call it observes that run. The
// caller owns the plane and Closes it.
func WithObservability(p *Observability) Option {
	return func(c *config) { c.obs = p }
}

// ObservabilityHandler serves a plane over HTTP: an auto-refreshing
// HTML view at /, /metrics (JSON + expvar), /metrics.prom (Prometheus
// text exposition), /workers, /flight (?format=jsonl|chrome|trace,
// ?which=live|anomaly), /traces + /trace?id= (when a tracer is
// attached), and /debug/ (pprof + expvar). label names the engine in
// views and trace metadata.
func ObservabilityHandler(p *Observability, label string) http.Handler {
	return livemetrics.NewHandler(p, label)
}

// Tracing is a causal span tracer: every traced submission becomes a
// span tree — one submission root, one span per phase, one span per
// executed chunk and per steal, with parent/child and steals-from
// causal links — retained in a bounded ring keyed by trace ID. Create
// with NewTracing, attach with WithTracing, look up with Get/Traces or
// serve with TraceHandler; tail-latency exemplars in an attached
// Observability plane carry these trace IDs, so a slow /metrics tail
// resolves to the exact dispatch history that produced it
// (`loopdoctor trace <id>`).
type Tracing = spantrace.Tracer

// TracingOptions sizes a tracer (per-trace span cap, completed-trace
// ring). The zero value gives usable defaults.
type TracingOptions = spantrace.Options

// SpanTrace is one sealed submission's span tree.
type SpanTrace = spantrace.Trace

// Span is one node of a span tree.
type Span = spantrace.Span

// NewTracing creates a causal span tracer.
func NewTracing(opts TracingOptions) *Tracing { return spantrace.NewTracer(opts) }

// WithTracing attaches a tracer. At NewExecutor it traces every
// subsequent submission; on a one-shot call it traces that run. When
// an Observability plane is attached alongside it, the plane's
// latency exemplars carry trace IDs and its HTTP handler serves
// /traces and /trace?id=. The caller owns the tracer.
func WithTracing(t *Tracing) Option {
	return func(c *config) { c.tracer = t }
}

// TraceHandler serves a tracer over HTTP on its own: /traces (summary
// list, newest first) and /trace?id= (?format=json for the span tree,
// ?format=trace for a forensics-compatible telemetry file). The same
// endpoints appear under ObservabilityHandler when the plane has a
// tracer attached.
func TraceHandler(t *Tracing) http.Handler { return spantrace.Handler(t) }

// Server is the multi-tenant loop-scheduling service: serializable
// JobSpecs against named kernels, admitted through per-tenant
// token-bucket quotas and a weighted fair queue with a bounded
// backlog (excess sheds rather than queueing unboundedly), dispatched
// onto a pool of Executor shards keyed scheduler×procs so affinity
// state persists fleet-wide. Create with NewServer, serve over HTTP
// with ServeHandler (see cmd/loopserved; Go client: repro/serveclient),
// and Close when done.
type Server = serve.Server

// ServerOptions configures a Server: shard worker counts, queue bound,
// per-tenant quotas and weights, and the observability attachments.
type ServerOptions = serve.Options

// ServerTenant is one tenant's admission policy (fair-queue weight,
// token-bucket rate and burst).
type ServerTenant = serve.TenantConfig

// NewServer starts a loop-scheduling service.
func NewServer(opts ServerOptions) (*Server, error) { return serve.New(opts) }

// ServeHandler serves a Server over HTTP: an auto-refreshing HTML view
// at /, POST /jobs (JobSpec JSON in, stats + checksum out; 429 with
// Retry-After on shed, 400 on an invalid spec, 503 once closed),
// /kernels, /status, /tenants, /shards, /healthz. Observability
// endpoints are mounted separately via ObservabilityHandler, as in
// cmd/loopserved. label names the service in the HTML view.
func ServeHandler(s *Server, label string) http.Handler {
	return serve.NewHandler(s, label)
}

// lower resolves the option list's JobSpec into the engine's
// submission config — the same job.Spec.Config path a wire submission
// takes — then layers the process-local attachments on top.
func (c *config) lower() (core.Config, error) {
	cc, err := c.job.Config()
	if err != nil {
		return core.Config{}, err
	}
	if c.spec != nil {
		cc.Spec = *c.spec
	}
	cc.Ctx = c.ctx
	cc.CostHint = c.costHint
	cc.StartDelay = c.startDelay
	cc.Events = c.events
	cc.Metrics = c.metrics
	cc.Prov = c.prov
	cc.QueueDepthEvery = c.queueDepthEvery
	return cc, nil
}

func buildConfig(opts []Option) (config, error) {
	// One-shot paths run under context.Background(); the *Ctx variants
	// and Executor submissions overwrite Ctx afterwards.
	cfg := config{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err == nil {
		cfg.cc, cfg.err = cfg.lower()
	}
	return cfg, cfg.err
}

// applyObs wires a one-shot run's core config into the plane: hot-path
// hooks plus telemetry/provenance tees into the flight recorder (an
// Executor's plane is instead wired by internal/pool per submission).
func applyObs(cfg config) core.Config {
	cc := cfg.cc
	if cfg.obs != nil {
		cc.Hooks = cfg.obs.Collector()
		ev, pv := cfg.obs.Recorder().ForSubmission()
		cc.Events = telemetry.Tee(cc.Events, ev)
		cc.Prov = telemetry.TeeProv(cc.Prov, pv)
	}
	return cc
}

// spanHooks composes a one-shot run's plane hooks (which may be
// absent) with its span collection, so one Config.Hooks value
// satisfies both core.ObsHooks and core.SpanObserver. The Executor
// path has its own copy in internal/pool.
type spanHooks struct {
	inner core.ObsHooks
	*spantrace.Active
}

func (h spanHooks) ObserveChunk(proc, owner int, stolen bool, iters int, durNS float64) {
	if h.inner != nil {
		h.inner.ObserveChunk(proc, owner, stolen, iters, durNS)
	}
}

func (h spanHooks) ObserveSteal(thief, victim, iters int, latNS float64) {
	if h.inner != nil {
		h.inner.ObserveSteal(thief, victim, iters, latNS)
	}
}

func oneShotOutcome(err error) string {
	if err != nil {
		return "cancelled"
	}
	return "ok"
}

// runObserved runs one one-shot loop under the config's plane and
// tracer: it times the run and reports it to the plane as a submission
// (a cancelled run counts as an anomaly and freezes the flight
// recorder), and seals the span tree carrying the trace ID into the
// plane's latency exemplars. With neither attached, f runs bare. A
// body panic propagates (one-shot semantics); the trace of a panicked
// run is dropped with its Active.
func runObserved(cfg config, phases int, f func(cc core.Config) (RunStats, error)) (RunStats, error) {
	cc := applyObs(cfg)
	var at *spantrace.Active
	if cfg.tracer != nil {
		if cfg.obs != nil {
			cfg.obs.SetTracer(cfg.tracer)
		}
		at = cfg.tracer.StartSubmission(spantrace.SubmissionInfo{
			Scheduler: cfg.cc.Spec.Name, Procs: procsOf(cfg.cc), Phases: phases,
		})
		cc.Hooks = spanHooks{inner: cc.Hooks, Active: at}
	}
	if cfg.obs == nil {
		st, err := f(cc)
		if at != nil {
			at.End(oneShotOutcome(err))
		}
		return st, err
	}
	start := time.Now()
	st, err := f(cc)
	elapsed := time.Since(start)
	var traceID uint64
	if at != nil {
		traceID = at.End(oneShotOutcome(err)).TraceID
	}
	if err != nil {
		cfg.obs.ObserveSubmission(elapsed, livemetrics.OutcomeCancelled, err.Error(), traceID)
	} else {
		cfg.obs.ObserveSubmission(elapsed, livemetrics.OutcomeOK, "", traceID)
	}
	return st, err
}

// ParallelFor executes body(i) for every i in [0, n) on a pool of
// workers under the selected scheduling algorithm (default: AFS), and
// returns scheduling statistics.
func ParallelFor(n int, body func(i int), opts ...Option) (RunStats, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	return runObserved(cfg, 1, func(cc core.Config) (RunStats, error) {
		return core.ParallelFor(cc, n, body)
	})
}

// ParallelForCtx is ParallelFor with a cancellation context: when ctx
// is cancelled, dispatch stops at chunk granularity (in-flight chunks
// finish), the worker barrier drains cleanly, and ParallelForCtx
// returns ctx's error alongside the partial statistics.
func ParallelForCtx(ctx context.Context, n int, body func(i int), opts ...Option) (RunStats, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	cfg.cc.Ctx = ctx
	return runObserved(cfg, 1, func(cc core.Config) (RunStats, error) {
		return core.ParallelFor(cc, n, body)
	})
}

// ForPhases executes a parallel loop nested inside a sequential loop —
// the shape affinity scheduling exploits: for each phase ph in
// [0, phases), body(ph, i) runs for i in [0, n(ph)) with a barrier
// between phases, and AFS places the same iterations on the same worker
// every phase.
func ForPhases(phases int, n func(ph int) int, body func(ph, i int), opts ...Option) (RunStats, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	return runObserved(cfg, phases, func(cc core.Config) (RunStats, error) {
		return core.Run(cc, phases, n, body)
	})
}

// ForPhasesCtx is ForPhases with a cancellation context, with the same
// chunk-granularity semantics as ParallelForCtx: the phase in flight
// stops dispatching, the barrier completes, and the error is ctx's.
// RunStats.Phases reports how many phases fully completed.
func ForPhasesCtx(ctx context.Context, phases int, n func(ph int) int, body func(ph, i int), opts ...Option) (RunStats, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	cfg.cc.Ctx = ctx
	return runObserved(cfg, phases, func(cc core.Config) (RunStats, error) {
		return core.Run(cc, phases, n, body)
	})
}

// Executor is the persistent lifetime of the runtime: a long-lived
// worker pool accepting loop submissions from any number of goroutines
// for its whole life, so the paper's affinity state — the
// deterministic ⌈N/P⌉ ownership mapping, the per-worker AFS queues,
// and the workers' warmed caches — carries over between successive
// loops on the same index space instead of being torn down on every
// call, and per-call goroutine spawn/teardown is amortised across the
// submission stream.
//
// Submissions are admitted in FIFO arrival order and run one at a
// time with the full worker set (per-loop isolation, the paper's
// one-loop-owns-the-machine model). Each submission carries its own
// options, statistics, telemetry sinks and failure domain: a body
// panic surfaces to that submitter as *ExecutorPanicError, a context
// cancellation stops that loop at chunk granularity — neither poisons
// later submissions.
//
//	ex, _ := repro.NewExecutor(repro.WithProcs(8))
//	defer ex.Close()
//	for _, req := range requests {
//	    stats, err := ex.Submit(req.Ctx, req.N, req.Body, repro.WithScheduler("afs"))
//	    ...
//	}
type Executor struct {
	px       *pool.Executor
	defaults []Option
}

// ExecutorPanicError wraps a loop body's panic value: unlike the
// one-shot ParallelFor (which re-panics like a sequential loop), an
// Executor contains the panic to the offending submission.
type ExecutorPanicError = pool.PanicError

// ErrExecutorClosed is returned by submissions made after Close.
var ErrExecutorClosed = pool.ErrClosed

// NewExecutor starts a persistent executor. The options become the
// defaults for every submission (per-submission options override
// them); WithProcs fixes the pool size (default runtime.GOMAXPROCS).
func NewExecutor(opts ...Option) (*Executor, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	px, err := pool.New(procsOf(cfg.cc))
	if err != nil {
		return nil, err
	}
	if cfg.obs != nil {
		px.SetObservability(cfg.obs)
	}
	if cfg.tracer != nil {
		px.SetTracer(cfg.tracer)
		if cfg.obs != nil {
			cfg.obs.SetTracer(cfg.tracer)
		}
	}
	return &Executor{px: px, defaults: opts}, nil
}

// procsOf resolves a config's worker count the same way the one-shot
// paths do.
func procsOf(cfg core.Config) int {
	if cfg.Procs > 0 {
		return cfg.Procs
	}
	return runtime.GOMAXPROCS(0)
}

// Procs is the executor's worker count. Submissions may select fewer
// workers with WithProcs, never more.
func (e *Executor) Procs() int { return e.px.Procs() }

// Submissions counts submissions that have completed execution,
// including cancelled and panicked ones.
func (e *Executor) Submissions() int64 { return e.px.Submissions() }

// Close stops the workers once in-flight submissions finish; later
// submissions fail with ErrExecutorClosed. Idempotent.
func (e *Executor) Close() error { return e.px.Close() }

// submitConfig merges the executor defaults with one submission's
// options, resolving the submission's core config. The executor's own
// plane (WithObservability at NewExecutor) is wired by internal/pool
// once per submission; a plane passed per submission is only honoured
// when the executor has none, so streams are never double-teed.
func (e *Executor) submitConfig(opts []Option) (core.Config, error) {
	merged := make([]Option, 0, len(e.defaults)+len(opts))
	merged = append(merged, e.defaults...)
	merged = append(merged, opts...)
	cfg, err := buildConfig(merged)
	if err != nil {
		return core.Config{}, err
	}
	if cfg.obs != nil && cfg.obs != e.px.Observability() && e.px.Observability() == nil {
		return applyObs(cfg), nil
	}
	return cfg.cc, nil
}

// Submit executes body(i) for i in [0, n) on the pool and blocks until
// the loop completes, is cancelled, or panics. Safe to call from many
// goroutines; admission is FIFO. A nil ctx means context.Background().
func (e *Executor) Submit(ctx context.Context, n int, body func(i int), opts ...Option) (RunStats, error) {
	cfg, err := e.submitConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	return e.px.Submit(ctx, cfg, n, body)
}

// SubmitPhases executes a phased loop on the pool (see ForPhases),
// preserving cross-phase — and, across submissions over the same index
// space, cross-loop — affinity.
func (e *Executor) SubmitPhases(ctx context.Context, phases int, n func(ph int) int, body func(ph, i int), opts ...Option) (RunStats, error) {
	cfg, err := e.submitConfig(opts)
	if err != nil {
		return RunStats{}, err
	}
	return e.px.SubmitPhases(ctx, cfg, phases, n, body)
}

// SubmitJob executes a serializable JobSpec on the pool: the spec's
// kernel name is resolved against the registered kernel table (see
// KernelNames), fresh per-job kernel state is built from its params,
// and the phased loop runs under the spec's scheduler/procs/grain —
// the exact execution path a loopserved instance takes for a wire
// submission, available locally. A positive DeadlineMS bounds the run
// via the context. Returns the run's stats and the kernel checksum.
func (e *Executor) SubmitJob(ctx context.Context, spec JobSpec, opts ...Option) (RunStats, float64, error) {
	if err := spec.RequireKernel(); err != nil {
		return RunStats{}, 0, err
	}
	r, err := job.Build(spec)
	if err != nil {
		return RunStats{}, 0, err
	}
	merged := append([]Option{WithJobSpec(spec)}, opts...)
	cfg, err := e.submitConfig(merged)
	if err != nil {
		return RunStats{}, 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d := spec.Deadline(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	st, err := e.px.SubmitPhases(ctx, cfg, r.Phases, r.N, r.Body)
	return st, r.Checksum(), err
}

// Observability returns the executor's live plane (set with
// WithObservability at NewExecutor), or nil.
func (e *Executor) Observability() *Observability { return e.px.Observability() }

// Tracing returns the executor's causal tracer (set with WithTracing
// at NewExecutor), or nil. Like the plane, tracing is an
// executor-lifetime concern: WithTracing passed to an individual
// Submit is ignored.
func (e *Executor) Tracing() *Tracing { return e.px.Tracer() }

// Machine is a simulated shared-memory multiprocessor description.
type Machine = machine.Machine

// Machine presets for the paper's four platforms, plus an ideal PRAM
// for testing.
var (
	Iris         = machine.Iris
	ButterflyI   = machine.ButterflyI
	Symmetry     = machine.Symmetry
	KSR1         = machine.KSR1
	IdealMachine = machine.Ideal
)

// MachineByName resolves "iris", "butterfly", "symmetry", "ksr1",
// "ideal".
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// SimProgram describes a phased parallel computation for the simulator
// (per-iteration costs and memory footprints).
type SimProgram = sim.Program

// SimLoop is one parallel loop of a SimProgram.
type SimLoop = sim.ParLoop

// SimTouch is one memory-footprint reference made by an iteration.
type SimTouch = sim.Touch

// SimResult reports a simulated execution.
type SimResult = sim.Metrics

// SimOptions tunes a simulation run (per-processor start delays,
// jitter seed, optional trace).
type SimOptions = sim.Options

// Trace records chunk executions and steals during a simulation; pass
// NewTrace(p) via SimOptions.Trace and render with Gantt/Summary.
type Trace = trace.Trace

// NewTrace creates a trace for p processors.
func NewTrace(p int) *Trace { return trace.New(p) }

// TelemetryEvent is one structured scheduling event (exec, steal,
// queue wait, cache flush, phase boundary) from either substrate.
type TelemetryEvent = telemetry.Event

// EventSink consumes telemetry events as they happen.
type EventSink = telemetry.Sink

// EventStream is a concurrent-safe in-memory event sink, usable with
// both the real runtime (WithEvents) and the simulator
// (SimOptions.Events).
type EventStream = telemetry.SyncStream

// NewEventStream creates an empty concurrent-safe event stream.
func NewEventStream() *EventStream { return telemetry.NewSyncStream() }

// ProvenanceRecord is one per-chunk provenance record: executing
// processor, owning queue, stolen flag, and the chunk's cost
// decomposition (exact for simulator streams, compute-only for the
// real runtime).
type ProvenanceRecord = telemetry.Prov

// ProvenanceSink consumes provenance records as chunks complete.
type ProvenanceSink = telemetry.ProvSink

// ProvenanceStream is a concurrent-safe in-memory provenance sink,
// usable with both the real runtime (WithProvenance) and the simulator
// (SimOptions.Prov accepts any ProvenanceSink).
type ProvenanceStream = telemetry.SyncProvStream

// NewProvenanceStream creates an empty concurrent-safe provenance
// stream.
func NewProvenanceStream() *ProvenanceStream { return telemetry.NewSyncProvStream() }

// QueueDepthSample is one timed per-queue backlog sample from
// WithQueueDepthSampling.
type QueueDepthSample = core.QueueDepths

// MetricsRegistry holds named counters, gauges and histograms with
// per-step time-series snapshots.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// TraceReport is the result of verifying an event stream against the
// paper's correctness invariants.
type TraceReport = telemetry.Report

// CheckTrace verifies an event stream: every iteration executes
// exactly once per phase, an iteration migrates at most once per
// phase, and steals are legal (non-empty chunk, real victim).
func CheckTrace(events []TelemetryEvent) *TraceReport { return telemetry.Check(events) }

// WriteChromeTrace renders an event stream in Chrome trace-event
// format (chrome://tracing / Perfetto). For real-runtime streams use
// timeScale 1e-3 (ns → µs); for simulator streams use
// 1e6 / machine.CyclesPerSec, or 1.0 to display raw cycles.
func WriteChromeTrace(w io.Writer, events []TelemetryEvent, label string, procs int, timeScale float64) error {
	return telemetry.WriteChromeTrace(w, events, telemetry.ChromeOptions{
		Label: label, Procs: procs, TimeScale: timeScale,
	})
}

// SimOption tunes one Simulate run, mirroring ParallelFor's variadic
// option style.
type SimOption func(*sim.Options)

// WithSimSeed sets the deterministic jitter seed; equal seeds give
// bit-identical runs.
func WithSimSeed(seed uint64) SimOption {
	return func(o *sim.Options) { o.Seed = seed }
}

// WithSimStartDelay gives each processor extra cycles before it starts
// fetching work in step 0 (the §4.5 delayed-start experiments).
func WithSimStartDelay(delays ...float64) SimOption {
	return func(o *sim.Options) { o.StartDelay = delays }
}

// WithSimTrace records every chunk execution and steal into t.
func WithSimTrace(t *Trace) SimOption {
	return func(o *sim.Options) { o.Trace = t }
}

// WithSimEvents attaches a telemetry sink receiving the structured
// event stream (the simulator is single-threaded, so an
// unsynchronised stream is fine).
func WithSimEvents(s EventSink) SimOption {
	return func(o *sim.Options) { o.Events = s }
}

// WithSimMetrics attaches a metrics registry snapshotted at every step
// barrier.
func WithSimMetrics(r *MetricsRegistry) SimOption {
	return func(o *sim.Options) { o.Metrics = r }
}

// WithSimProvenance attaches a provenance sink receiving one record
// per executed chunk with its exact cost decomposition.
func WithSimProvenance(s ProvenanceSink) SimOption {
	return func(o *sim.Options) { o.Prov = s }
}

// WithSimActiveProcs models a space-sharing OS growing and shrinking
// the application's processor partition between steps (clamped to
// [1, P]).
func WithSimActiveProcs(f func(step int) int) SimOption {
	return func(o *sim.Options) { o.ActiveProcs = f }
}

// WithSimCacheFlush invalidates every processor's cache after each
// group of that many steps — modelling a time-sharing quantum
// corrupting the caches (§2.1, §6).
func WithSimCacheFlush(everySteps int) SimOption {
	return func(o *sim.Options) { o.FlushEverySteps = everySteps }
}

// WithSimOptions applies a whole SimOptions struct at once — the
// migration path for code written against the deprecated SimulateOpts.
func WithSimOptions(opts SimOptions) SimOption {
	return func(o *sim.Options) { *o = opts }
}

// Simulate runs prog on p simulated processors of m under s.
func Simulate(m *Machine, p int, s Scheduler, prog SimProgram, opts ...SimOption) (SimResult, error) {
	var o sim.Options
	for _, opt := range opts {
		opt(&o)
	}
	return sim.RunOpts(m, p, s, prog, o)
}
