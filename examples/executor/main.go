// Executor: the persistent lifetime of the runtime. One long-lived
// worker pool serves a whole stream of loop submissions, so worker
// goroutines and the AFS affinity state (the deterministic ⌈N/P⌉
// ownership mapping and per-worker queues) are paid for once, not per
// loop — the serving-traffic shape, as opposed to the one-shot
// ParallelFor batch shape.
//
//	go run ./examples/executor
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	const (
		procs = 4
		n     = 256 // small loops: per-loop setup cost is what's measured
		loops = 400
	)

	// 1. Reuse beats per-call: run the same stream of small loops on a
	// persistent executor and via one-shot ParallelFor calls. (The
	// standing, statistically summarised version of this race is the
	// perflab many-small-loops duel; this is a single illustrative run,
	// so both arms get one untimed warmup stream first.)
	data := make([]float64, n)
	body := func(i int) { data[i] += 1 / (1 + data[i]) }

	ex, err := repro.NewExecutor(repro.WithProcs(procs), repro.WithScheduler("afs"))
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	stream := func(submit func() error) time.Duration {
		start := time.Now()
		for l := 0; l < loops; l++ {
			if err := submit(); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start)
	}
	viaExecutor := func() error { _, err := ex.Submit(nil, n, body); return err }
	viaParallelFor := func() error {
		_, err := repro.ParallelFor(n, body, repro.WithProcs(procs))
		return err
	}
	stream(viaExecutor) // warmup
	stream(viaParallelFor)
	reused := stream(viaExecutor)
	perCall := stream(viaParallelFor)

	fmt.Printf("%d loops × %d iterations on %d workers:\n", loops, n, procs)
	fmt.Printf("  persistent executor: %v\n", reused)
	fmt.Printf("  per-call ParallelFor: %v  (%.2fx the executor's time)\n",
		perCall, float64(perCall)/float64(reused))

	// 2. Concurrent submitters: the executor is a shared service.
	// Admission is FIFO and loops run one at a time with the full
	// worker set, each submission with its own options and stats.
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sched := []string{"afs", "gss", "ss"}[g]
			st, err := ex.Submit(nil, n, body, repro.WithScheduler(sched))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  goroutine %d ran under %s: %d iterations, %d queue ops\n",
				g, sched, st.Iterations, st.TotalSyncOps())
		}(g)
	}
	wg.Wait()

	// 3. Failure domains are per-submission. A cancelled context stops
	// that loop at chunk granularity; a panicking body surfaces to its
	// submitter as *ExecutorPanicError. Neither touches the workers:
	// the next submission runs normally.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.Submit(ctx, n, body); errors.Is(err, context.Canceled) {
		fmt.Println("cancelled submission returned context.Canceled")
	}

	_, err = ex.Submit(nil, n, func(i int) {
		if i == 17 {
			panic("bad row")
		}
	})
	var pe *repro.ExecutorPanicError
	if errors.As(err, &pe) {
		fmt.Printf("panicking submission contained: %v\n", pe.Value)
	}

	if st, err := ex.Submit(nil, n, body); err == nil {
		fmt.Printf("pool still healthy afterwards: %d iterations (submission #%d)\n",
			st.Iterations, ex.Submissions())
	}
}
