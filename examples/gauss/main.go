// Gauss: parallel Gaussian elimination with shrinking phases — the
// paper's Fig 4/15 kernel. Each elimination phase is a parallel loop
// over the rows below the pivot; the iteration space shifts by one row
// per phase, so affinity is strong but imperfect, and the shared pivot
// row must reach every processor each phase.
//
// The example solves a diagonally-dominant system under several
// schedulers, checks the solutions against back-substitution, and
// prints a simulated KSR-1 comparison (reproducing Fig 15's shape).
//
//	go run ./examples/gauss [-n 384] [-simprocs 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	var (
		n        = flag.Int("n", 384, "matrix dimension")
		simProcs = flag.Int("simprocs", 32, "processors for the simulated KSR-1 run")
	)
	flag.Parse()

	algos := []string{"static", "gss", "factoring", "trapezoid", "afs", "mod-factoring"}
	tab := stats.NewTable(
		fmt.Sprintf("Gaussian elimination %d×%d — real runtime", *n, *n),
		"algorithm", "wall time", "sync ops", "steals", "max |x-1|")
	for _, name := range algos {
		g := kernels.NewGaussMatrix(*n)
		st, err := repro.ForPhases(*n-1, g.PhaseIterations,
			func(ph, i int) { g.EliminateRow(ph, i) },
			repro.WithScheduler(name))
		if err != nil {
			log.Fatal(err)
		}
		// The system is built so the solution is all ones.
		worst := 0.0
		for _, v := range g.BackSubstitute() {
			if d := math.Abs(v - 1); d > worst {
				worst = d
			}
		}
		tab.AddRow(name, st.Elapsed.String(), fmt.Sprint(st.TotalSyncOps()),
			fmt.Sprint(st.Steals), fmt.Sprintf("%.1e", worst))
	}
	tab.Render(os.Stdout)

	fmt.Println()
	m := repro.KSR1()
	simTab := stats.NewTable(
		fmt.Sprintf("Gaussian elimination %d×%d — simulated %s, %d processors (cf. Fig 15)",
			*n, *n, m.Name, *simProcs),
		"algorithm", "sim time (s)", "vs AFS")
	var afsTime float64
	results := map[string]float64{}
	for _, name := range algos {
		spec, err := repro.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(m, *simProcs, spec, kernels.Gauss{N: *n}.Program(m))
		if err != nil {
			log.Fatal(err)
		}
		results[name] = res.Seconds
		if name == "afs" {
			afsTime = res.Seconds
		}
	}
	for _, name := range algos {
		simTab.AddRow(name, stats.FormatSeconds(results[name]),
			fmt.Sprintf("%.2fx", results[name]/afsTime))
	}
	simTab.Render(os.Stdout)
}
