// Machines: one kernel, four 1992 multiprocessors — how architecture
// decides which scheduling algorithm wins (§5 of the paper). The same
// Gaussian elimination is simulated on the Iris (fast CPUs, slow bus),
// the Butterfly (NUMA, no caches), the Symmetry (slow CPUs, fast bus)
// and the KSR-1 (huge caches, expensive sync), and the per-machine
// winners and losers are summarised.
//
//	go run ./examples/machines [-n 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 256, "matrix dimension")
	flag.Parse()

	type mp struct {
		m     *repro.Machine
		procs int
	}
	machines := []mp{
		{repro.Iris(), 8},
		{repro.ButterflyI(), 32},
		{repro.Symmetry(), 10},
		{repro.KSR1(), 32},
	}
	algos := []string{"ss", "gss", "trapezoid", "afs"}

	tab := stats.NewTable(
		fmt.Sprintf("Gaussian elimination %d×%d across machine models (simulated seconds)", *n, *n),
		"machine", "procs", "SS", "GSS", "TRAPEZOID", "AFS", "AFS advantage")
	for _, mc := range machines {
		times := map[string]float64{}
		row := []string{mc.m.Name, fmt.Sprint(mc.procs)}
		for _, name := range algos {
			spec, err := repro.SchedulerByName(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := repro.Simulate(mc.m, mc.procs, spec,
				kernels.Gauss{N: *n}.Program(mc.m))
			if err != nil {
				log.Fatal(err)
			}
			times[name] = res.Seconds
			row = append(row, stats.FormatSeconds(res.Seconds))
		}
		best := times["ss"]
		for _, v := range times {
			if v < best {
				best = v
			}
		}
		// How much the best non-affinity algorithm loses to AFS.
		rest := []float64{times["ss"], times["gss"], times["trapezoid"]}
		sort.Float64s(rest)
		row = append(row, fmt.Sprintf("%.2fx", rest[0]/times["afs"]))
		tab.AddRow(row...)
	}
	tab.Render(os.Stdout)

	fmt.Println(`
Reading the last column (best central-queue algorithm vs AFS):
  - Iris:      expensive bus, cheap compute — affinity is everything.
  - Butterfly: no caches to be affine to — the gap nearly vanishes.
  - Symmetry:  slow CPUs make communication relatively cheap — small gap.
  - KSR-1:     32 MB caches and costly sync — affinity dominates again.
This is the paper's §5 argument: as processor speeds outgrow memory and
interconnect speeds, schedulers that ignore data location forfeit ever
more performance.`)
}
