// Quickstart: schedule a parallel loop with affinity scheduling and
// inspect the scheduling statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A parallel map: out[i] = f(i). The default scheduler is AFS
	// (affinity scheduling, k = P); iterations are independent, so any
	// scheduler produces the same result.
	const n = 1 << 20
	out := make([]float64, n)
	stats, err := repro.ParallelFor(n, func(i int) {
		out[i] = math.Sqrt(float64(i)) * math.Sin(float64(i)/1000)
	}, repro.WithProcs(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d iterations in %v\n", stats.Iterations, stats.Elapsed)
	fmt.Printf("work-queue operations: %d (steals: %d, migrated iterations: %d)\n",
		stats.TotalSyncOps(), stats.Steals, stats.MigratedIters)

	// The same loop under classic self-scheduling: one queue operation
	// per iteration. Compare the sync-op counts.
	ssStats, err := repro.ParallelFor(n, func(i int) {
		out[i] = math.Sqrt(float64(i))
	}, repro.WithScheduler("ss"), repro.WithProcs(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-scheduling needed %d queue operations for the same loop;\n", ssStats.TotalSyncOps())
	fmt.Printf("affinity scheduling needed %d — a %.0fx reduction.\n",
		stats.TotalSyncOps(), float64(ssStats.TotalSyncOps())/float64(max(1, stats.TotalSyncOps())))

	// Phased computation: the loop shape affinity scheduling exploits.
	// Each worker re-executes the same index range every phase, so data
	// written in phase k is still local in phase k+1.
	acc := make([]float64, 4096)
	phStats, err := repro.ForPhases(32,
		func(ph int) int { return len(acc) },
		func(ph, i int) { acc[i] += float64(ph ^ i) },
		repro.WithSpec(repro.AFS()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphased run: %d phases, %d iterations, %d steals\n",
		phStats.Phases, phStats.Iterations, phStats.Steals)
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
