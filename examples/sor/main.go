// SOR: iterative successive over-relaxation of a 2-D grid — the
// paper's best case for affinity scheduling (§4.2). The parallel loop
// over rows is nested in a sequential loop over sweeps, and iteration j
// always touches rows j-1, j, j+1, so re-running iteration j on the
// same worker reuses cached data.
//
// The example solves a Laplace boundary-value problem with every
// scheduler on the real runtime, verifies all solutions agree, and also
// simulates the same computation on the paper's SGI Iris model to show
// the affinity effect the 1-machine wall clock may hide.
//
//	go run ./examples/sor [-n 512] [-sweeps 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	var (
		n      = flag.Int("n", 512, "grid dimension")
		sweeps = flag.Int("sweeps", 40, "relaxation sweeps")
	)
	flag.Parse()

	// Reference solution, serial.
	ref := kernels.NewSORGrid(*n)
	ref.RunSerial(*sweeps)
	want := ref.Checksum()

	algos := []string{"static", "ss", "gss", "factoring", "trapezoid", "afs", "mod-factoring"}
	tab := stats.NewTable(
		fmt.Sprintf("SOR %d×%d, %d sweeps — real runtime", *n, *n, *sweeps),
		"algorithm", "wall time", "sync ops", "steals", "result")
	for _, name := range algos {
		g := kernels.NewSORGrid(*n)
		var elapsed, ops, steals int64
		for ph := 0; ph < *sweeps; ph++ {
			st, err := repro.ParallelFor(*n, func(j int) { g.UpdateRow(j) },
				repro.WithScheduler(name))
			if err != nil {
				log.Fatal(err)
			}
			elapsed += int64(st.Elapsed)
			ops += st.TotalSyncOps()
			steals += st.Steals
			g.Swap()
		}
		result := "OK"
		if g.Checksum() != want {
			result = "MISMATCH"
		}
		tab.AddRow(name, fmt.Sprintf("%.2fms", float64(elapsed)/1e6),
			fmt.Sprint(ops), fmt.Sprint(steals), result)
	}
	tab.Render(os.Stdout)

	// The same kernel on the simulated 8-processor Iris: here cache
	// affinity is modelled explicitly, reproducing Fig 3.
	fmt.Println()
	m := repro.Iris()
	sim := stats.NewTable(
		fmt.Sprintf("SOR %d×%d, %d sweeps — simulated %s (8 processors)", *n, *n, *sweeps, m.Name),
		"algorithm", "sim time (s)", "cache miss ratio")
	for _, name := range algos {
		spec, err := repro.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(m, 8, spec, kernels.SOR{N: *n, Phases: *sweeps}.Program(m))
		if err != nil {
			log.Fatal(err)
		}
		sim.AddRow(name, stats.FormatSeconds(res.Seconds),
			fmt.Sprintf("%.1f%%", 100*res.MissRatio()))
	}
	sim.Render(os.Stdout)
}
