// Loopnest: express the paper's L4 benchmark (Fig 2) as a literal
// loop-nest — "DO PARALLEL" inside "DO SEQUENTIAL", multi-way nested
// parallel loops, probabilistic branch statements — and let the
// compiler front end coalesce the nested parallel loops ([24]) into
// schedulable flat loops. The compiled program then runs on the machine
// simulator under each scheduling algorithm, reproducing Fig 9's
// result: with no memory references, all dynamic schedulers tie and
// self-scheduling loses on synchronisation alone.
//
//	go run ./examples/loopnest
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/loopnest"
	"repro/internal/stats"
)

func main() {
	// Fig 2, literally (costs in abstract time units; branches taken
	// with probability one half).
	nest := loopnest.Seq("I1", 50,
		loopnest.Par("I2", 10, loopnest.Par("I3", 10, loopnest.Par("I4", 10,
			loopnest.Work(10),
			loopnest.Maybe(0.5, loopnest.Work(50))))),
		loopnest.Par("I5", 100,
			loopnest.Work(50),
			loopnest.Par("I6", 5,
				loopnest.Work(100),
				loopnest.Maybe(0.5, loopnest.Work(30)))),
		loopnest.Par("I7", 20, loopnest.Par("I8", 4, loopnest.Work(30))),
	)
	prog, err := loopnest.Compile(nest, loopnest.Options{
		Name: "L4", UnitCycles: 20, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled L4: %d parallel-loop steps (nested parallel loops coalesced to N=1000, 500, 80)\n\n", prog.Steps)

	m := repro.Iris()
	tab := stats.NewTable("L4 on the simulated Iris, 8 processors (cf. Fig 9)",
		"algorithm", "time (s)", "queue ops")
	for _, name := range []string{"static", "ss", "gss", "factoring", "trapezoid", "afs", "mod-factoring"} {
		spec, err := repro.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(m, 8, spec, prog)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(name, stats.FormatSeconds(res.Seconds), fmt.Sprint(res.TotalSyncOps()))
	}
	tab.Render(os.Stdout)
}
