// Transitive closure: Warshall's algorithm over a skewed input — the
// paper's showcase for input-dependent load imbalance (§4.3, Fig 6).
// With all the work concentrated in a clique, STATIC collapses, GSS's
// oversized first chunk becomes the straggler, and AFS balances by
// stealing while keeping most iterations on their home processors.
//
// The example computes reachability on a clique-plus-isolated-nodes
// graph under several schedulers, prints steal activity, and verifies
// all closures agree.
//
//	go run ./examples/tclosure [-nodes 640] [-clique 320]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 640, "graph nodes")
		clique = flag.Int("clique", 320, "clique size (the load skew)")
	)
	flag.Parse()

	input := workload.CliqueGraph(*nodes, *clique)
	ref := kernels.NewTCGraph(input)
	ref.RunSerial()

	algos := []string{"static", "best-static", "gss", "factoring", "afs", "afs-le", "mod-factoring"}
	tab := stats.NewTable(
		fmt.Sprintf("transitive closure, %d nodes with a %d-clique — real runtime", *nodes, *clique),
		"algorithm", "wall time", "sync ops", "steals", "migrated", "closure")
	for _, name := range algos {
		tc := kernels.NewTCGraph(input)
		var elapsed, ops, steals, migrated int64
		// BEST-STATIC gets the oracle: clique rows are N times costlier.
		hint := func(ph, j int) float64 {
			if j < *clique {
				return float64(*nodes)
			}
			return 1
		}
		for ph := 0; ph < *nodes; ph++ {
			tc.BeginPhase(ph)
			st, err := repro.ParallelFor(*nodes,
				func(j int) { tc.UpdateRow(ph, j) },
				repro.WithScheduler(name),
				repro.WithCostHint(func(_, j int) float64 { return hint(ph, j) }))
			if err != nil {
				log.Fatal(err)
			}
			elapsed += int64(st.Elapsed)
			ops += st.TotalSyncOps()
			steals += st.Steals
			migrated += st.MigratedIters
		}
		result := "OK"
		if !tc.G.Equal(ref.G) {
			result = "MISMATCH"
		}
		tab.AddRow(name, fmt.Sprintf("%.2fms", float64(elapsed)/1e6),
			fmt.Sprint(ops), fmt.Sprint(steals), fmt.Sprint(migrated), result)
	}
	tab.Render(os.Stdout)

	// Simulated Iris view (Fig 6's machine).
	fmt.Println()
	m := repro.Iris()
	simTab := stats.NewTable(
		fmt.Sprintf("same input — simulated %s, 8 processors (cf. Fig 6)", m.Name),
		"algorithm", "sim time (s)", "steals", "migrated iters")
	for _, name := range algos {
		spec, err := repro.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(m, 8, spec,
			kernels.TClosure{Input: input}.Program(m))
		if err != nil {
			log.Fatal(err)
		}
		simTab.AddRow(name, stats.FormatSeconds(res.Seconds),
			fmt.Sprint(res.Steals), fmt.Sprint(res.MigratedIters))
	}
	simTab.Render(os.Stdout)
}
