package repro_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestObservabilityExecutor wires a plane to a persistent executor via
// the public API — the engineview deployment shape — and checks that
// the plane sees every submission.
func TestObservabilityExecutor(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	ex, err := repro.NewExecutor(repro.WithProcs(4), repro.WithObservability(plane))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ex.Observability() != plane {
		t.Fatal("Executor.Observability does not return the attached plane")
	}
	n := 2048
	data := make([]float64, n)
	const subs = 4
	for i := 0; i < subs; i++ {
		if _, err := ex.Submit(t.Context(), n, func(i int) { data[i]++ }, repro.WithScheduler("afs")); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	snap := plane.Snapshot()
	if snap.Counters.Submissions != subs {
		t.Errorf("submissions = %d, want %d", snap.Counters.Submissions, subs)
	}
	if snap.Counters.Completed != subs {
		t.Errorf("completed = %d, want %d", snap.Counters.Completed, subs)
	}
	if snap.Counters.Chunks == 0 {
		t.Error("plane saw no chunks")
	}
	if len(snap.Workers) != 4 {
		t.Errorf("worker rows = %d, want 4", len(snap.Workers))
	}
	for i := range data {
		if data[i] != subs {
			t.Fatalf("data[%d] = %v, want %d: submissions interfered", i, data[i], subs)
		}
	}
}

// TestObservabilityOneShot: the one-shot ParallelFor path observes
// through the same plane option.
func TestObservabilityOneShot(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	n := 1024
	var hits [1024]int32
	if _, err := repro.ParallelFor(n, func(i int) { hits[i]++ },
		repro.WithProcs(4), repro.WithScheduler("afs"), repro.WithObservability(plane)); err != nil {
		t.Fatal(err)
	}
	snap := plane.Snapshot()
	if snap.Counters.Submissions != 1 {
		t.Errorf("submissions = %d, want 1", snap.Counters.Submissions)
	}
	if snap.Counters.Completed != 1 {
		t.Errorf("completed = %d, want 1", snap.Counters.Completed)
	}
}

// TestObservabilityHandler serves the plane over HTTP from the public
// wrapper and decodes the scrape.
func TestObservabilityHandler(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	if _, err := repro.ParallelFor(512, func(int) {},
		repro.WithProcs(2), repro.WithObservability(plane)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repro.ObservabilityHandler(plane, "public-api"))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap repro.ObservabilitySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not an ObservabilitySnapshot: %v", err)
	}
	if snap.Counters.Submissions != 1 {
		t.Errorf("scraped submissions = %d, want 1", snap.Counters.Submissions)
	}
}
