package repro_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestObservabilityExecutor wires a plane to a persistent executor via
// the public API — the engineview deployment shape — and checks that
// the plane sees every submission.
func TestObservabilityExecutor(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	ex, err := repro.NewExecutor(repro.WithProcs(4), repro.WithObservability(plane))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ex.Observability() != plane {
		t.Fatal("Executor.Observability does not return the attached plane")
	}
	n := 2048
	data := make([]float64, n)
	const subs = 4
	for i := 0; i < subs; i++ {
		if _, err := ex.Submit(t.Context(), n, func(i int) { data[i]++ }, repro.WithScheduler("afs")); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	snap := plane.Snapshot()
	if snap.Counters.Submissions != subs {
		t.Errorf("submissions = %d, want %d", snap.Counters.Submissions, subs)
	}
	if snap.Counters.Completed != subs {
		t.Errorf("completed = %d, want %d", snap.Counters.Completed, subs)
	}
	if snap.Counters.Chunks == 0 {
		t.Error("plane saw no chunks")
	}
	if len(snap.Workers) != 4 {
		t.Errorf("worker rows = %d, want 4", len(snap.Workers))
	}
	for i := range data {
		if data[i] != subs {
			t.Fatalf("data[%d] = %v, want %d: submissions interfered", i, data[i], subs)
		}
	}
}

// TestObservabilityOneShot: the one-shot ParallelFor path observes
// through the same plane option.
func TestObservabilityOneShot(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	n := 1024
	var hits [1024]int32
	if _, err := repro.ParallelFor(n, func(i int) { hits[i]++ },
		repro.WithProcs(4), repro.WithScheduler("afs"), repro.WithObservability(plane)); err != nil {
		t.Fatal(err)
	}
	snap := plane.Snapshot()
	if snap.Counters.Submissions != 1 {
		t.Errorf("submissions = %d, want 1", snap.Counters.Submissions)
	}
	if snap.Counters.Completed != 1 {
		t.Errorf("completed = %d, want 1", snap.Counters.Completed)
	}
}

// TestTracingExecutor wires a tracer and a plane to a persistent
// executor via the public API and follows the triage loop end to end:
// every submission yields a span tree, the plane's exemplars carry the
// trace IDs, and TraceHandler serves the trees over HTTP.
func TestTracingExecutor(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	tracer := repro.NewTracing(repro.TracingOptions{})
	ex, err := repro.NewExecutor(repro.WithProcs(2),
		repro.WithObservability(plane), repro.WithTracing(tracer))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ex.Tracing() != tracer {
		t.Fatal("Executor.Tracing does not return the attached tracer")
	}
	const subs = 3
	data := make([]float64, 4096)
	for i := 0; i < subs; i++ {
		if _, err := ex.Submit(t.Context(), len(data), func(i int) { data[i]++ },
			repro.WithScheduler("afs")); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}

	traces := tracer.Traces()
	if len(traces) != subs {
		t.Fatalf("tracer retained %d traces, want %d", len(traces), subs)
	}
	for _, tr := range traces {
		if tr.Outcome != "ok" || tr.Chunks() == 0 || tr.Scheduler != "AFS" {
			t.Fatalf("trace %d looks wrong: %+v", tr.TraceID, tr.Summary())
		}
	}

	// The plane's slow exemplars name real retained traces.
	snap := plane.Snapshot()
	if len(snap.SubmissionExemplars) == 0 {
		t.Fatal("plane retained no submission exemplars despite tracing")
	}
	for _, e := range snap.SubmissionExemplars {
		if tracer.Get(e.TraceID) == nil {
			t.Fatalf("exemplar trace %d not resolvable in the tracer", e.TraceID)
		}
	}

	// TraceHandler serves both endpoints from the public wrapper.
	srv := httptest.NewServer(repro.TraceHandler(tracer))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var summaries []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&summaries); err != nil {
		t.Fatalf("/traces does not decode: %v", err)
	}
	if len(summaries) != subs {
		t.Fatalf("/traces lists %d traces, want %d", len(summaries), subs)
	}
	resp2, err := srv.Client().Get(srv.URL + fmt.Sprintf("/trace?id=%d", traces[0].TraceID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tree repro.SpanTrace
	if err := json.NewDecoder(resp2.Body).Decode(&tree); err != nil {
		t.Fatalf("/trace does not decode: %v", err)
	}
	if tree.TraceID != traces[0].TraceID || len(tree.Spans) == 0 {
		t.Fatalf("served span tree is wrong: id %d, %d spans", tree.TraceID, len(tree.Spans))
	}
}

// TestTracingOneShot: the one-shot ParallelFor path seals a trace per
// call through the same WithTracing option.
func TestTracingOneShot(t *testing.T) {
	tracer := repro.NewTracing(repro.TracingOptions{})
	var hits [512]int32
	if _, err := repro.ParallelFor(len(hits), func(i int) { hits[i]++ },
		repro.WithProcs(2), repro.WithTracing(tracer)); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("tracer retained %d traces, want 1", len(traces))
	}
	if traces[0].Outcome != "ok" || traces[0].Chunks() == 0 {
		t.Fatalf("one-shot trace looks wrong: %+v", traces[0].Summary())
	}
}

// TestObservabilityHandler serves the plane over HTTP from the public
// wrapper and decodes the scrape.
func TestObservabilityHandler(t *testing.T) {
	plane := repro.NewObservability(repro.ObservabilityOptions{})
	defer plane.Close()
	if _, err := repro.ParallelFor(512, func(int) {},
		repro.WithProcs(2), repro.WithObservability(plane)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repro.ObservabilityHandler(plane, "public-api"))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap repro.ObservabilitySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not an ObservabilitySnapshot: %v", err)
	}
	if snap.Counters.Submissions != 1 {
		t.Errorf("scraped submissions = %d, want 1", snap.Counters.Submissions)
	}
}
